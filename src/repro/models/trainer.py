"""The multi-task training loop — Algorithm 1 of the paper.

Shared encoder parameters are pre-trained (BERT init); task-specific
layers are randomly initialized.  Mini-batches are shuffled each epoch;
each step computes the dual-objective loss (Eq. 3, delegated to the
model's ``loss``), backpropagates, and applies Adam under a linear
warmup-decay schedule.  Early stopping watches validation EM F1 with the
paper's patience mechanism, and the best validation snapshot is restored
at the end.

The loop is crash-safe: pass ``checkpoint_dir=`` to persist the full
training state (weights, Adam moments, RNG streams, early stopping,
history) at every epoch boundary, and ``resume=True`` to continue a
killed run from its newest valid checkpoint — the resumed run finishes
byte-identical to an uninterrupted one.  Non-finite losses (one poison
batch must not kill a run) are skipped and counted; past a bounded
number per epoch the loop restores the last checkpoint with a halved
peak learning rate.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from pathlib import Path

import numpy as np

from repro.data.loader import EncodedPair, iter_batches
from repro.engine import EngineConfig, InferenceEngine
from repro.eval.metrics import binary_f1
from repro.ft.checkpoint import (
    Checkpointer,
    TrainingState,
    collect_module_rngs,
    restore_module_rngs,
    rng_state,
    set_rng_state,
)
from repro.ft.faults import fault_point
from repro.models.base import EMModel
from repro import obs
from repro.runs import store as runstore
from repro.runs.probes import ProbeConfig, Prober
from repro.nn.optim import Adam, clip_grad_norm_
from repro.nn.schedules import LinearWarmupDecay
from repro.nn.serialization import CheckpointError


@dataclass
class TrainConfig:
    """Hyperparameters of a fine-tuning run (paper defaults, mini scale)."""

    epochs: int = 12
    batch_size: int = 16
    learning_rate: float = 3e-4
    warmup_epochs: int = 1          # "one epoch warmup"
    patience: int = 4               # early stopping on validation F1
    max_grad_norm: float = 1.0
    seed: int = 0
    # Fault tolerance: skip up to this many non-finite-loss batches per
    # epoch before rolling back to the last checkpoint with a halved LR
    # (rollback needs a checkpoint_dir; without one the loop keeps
    # skipping), up to max_lr_halvings times per run.
    max_nonfinite_batches: int = 8
    max_lr_halvings: int = 4
    keep_checkpoints: int = 3


@dataclass
class TrainResult:
    """Loss/metric history of a completed run.

    ``best_epoch`` is the epoch whose weights were restored at the end:
    the best-validation epoch when a validation set was given, otherwise
    the final epoch (``epochs_run - 1``) since the final weights win.
    ``best_valid_f1`` stays 0.0 without a validation set.
    """

    train_losses: list[float] = field(default_factory=list)
    valid_f1s: list[float] = field(default_factory=list)
    best_valid_f1: float = 0.0
    best_epoch: int = -1
    epochs_run: int = 0
    stopped: bool = False           # early stopping fired
    nonfinite_skipped: int = 0      # batches skipped for NaN/Inf loss
    lr_halvings: int = 0            # divergence rollbacks performed
    checkpoint_failures: int = 0    # checkpoint saves that failed (e.g. ENOSPC)


class EarlyStopping:
    """Stop when the watched metric fails to improve for ``patience`` epochs."""

    def __init__(self, patience: int):
        if patience < 1:
            raise ValueError("patience must be >= 1")
        self.patience = patience
        self.best = -np.inf
        self.best_epoch = -1
        self._since_best = 0

    def update(self, value: float, epoch: int) -> bool:
        """Record an epoch metric; return True when training should stop."""
        if value > self.best:
            self.best = value
            self.best_epoch = epoch
            self._since_best = 0
            return False
        self._since_best += 1
        return self._since_best >= self.patience

    def state_dict(self) -> dict:
        return {"patience": self.patience, "best": float(self.best),
                "best_epoch": self.best_epoch, "since_best": self._since_best}

    def load_state_dict(self, state: dict) -> None:
        self.patience = int(state["patience"])
        self.best = float(state["best"])
        self.best_epoch = int(state["best_epoch"])
        self._since_best = int(state["since_best"])


class Trainer:
    """Fits an :class:`EMModel` on encoded pairs."""

    def __init__(self, config: TrainConfig | None = None):
        self.config = config or TrainConfig()

    def _engine(self, model: EMModel, batch_size: int | None = None
                ) -> InferenceEngine:
        """The shared inference path (length-bucketed, ``no_grad``)."""
        return InferenceEngine(model, config=EngineConfig(
            batch_size=batch_size or self.config.batch_size))

    def evaluate_f1(self, model: EMModel, encoded: list[EncodedPair],
                    batch_size: int | None = None) -> float:
        """EM F1 over an encoded split."""
        if not encoded:
            return 0.0
        out = self._engine(model, batch_size).score_encoded(encoded)
        return binary_f1(out["labels"], out["em_pred"])

    # ------------------------------------------------------------------
    # Checkpoint plumbing
    # ------------------------------------------------------------------
    def _capture(self, epoch: int, model: EMModel, best_state: dict,
                 optimizer: Adam, schedule: LinearWarmupDecay,
                 stopper: EarlyStopping, result: TrainResult,
                 rng: np.random.Generator, lr_scale: float) -> TrainingState:
        return TrainingState(
            epoch=epoch,
            model=model.state_dict(),
            best_model=best_state,
            optimizer=optimizer.state_dict(),
            schedule=schedule.state_dict(),
            trainer_rng=rng_state(rng),
            module_rngs=collect_module_rngs(model),
            stopper=stopper.state_dict(),
            result=asdict(result),
            lr_scale=lr_scale,
            obs_counters=dict(obs.REGISTRY.counters) if obs.enabled() else {},
        )

    @staticmethod
    def _restore(state: TrainingState, model: EMModel, optimizer: Adam,
                 schedule: LinearWarmupDecay, stopper: EarlyStopping,
                 result: TrainResult, rng: np.random.Generator) -> dict:
        """Load a checkpoint into live objects; returns the best-state dict."""
        model.load_state_dict(state.model)
        optimizer.load_state_dict(state.optimizer)
        schedule.load_state_dict(state.schedule)
        stopper.load_state_dict(state.stopper)
        set_rng_state(rng, state.trainer_rng)
        restore_module_rngs(model, state.module_rngs)
        for f in fields(TrainResult):
            if f.name in state.result:
                setattr(result, f.name, state.result[f.name])
        # Telemetry counters are cumulative over the *run*, not the
        # process: a resumed run picks them up where the boundary left
        # them instead of re-counting from zero.
        if state.obs_counters and obs.enabled():
            obs.REGISTRY.counters.update(state.obs_counters)
        return dict(state.best_model)

    def fit(self, model: EMModel, train: list[EncodedPair],
            valid: list[EncodedPair],
            checkpoint_dir: str | Path | None = None,
            resume: bool = False,
            probes: ProbeConfig | None = None) -> TrainResult:
        """Train with Algorithm 1 and restore the best validation state.

        With ``checkpoint_dir`` the full training state is persisted at
        every epoch boundary; ``resume=True`` additionally restores the
        newest valid checkpoint before training (a fresh run starts when
        none exists).

        When a run is recording (:func:`repro.runs.store.active`), every
        step's loss/LR and every epoch's validation F1 + throughput are
        appended to its time series; ``probes`` additionally samples
        model-introspection channels (observation-only — the trained
        weights are byte-identical with probes on or off).
        """
        cfg = self.config
        if not train:
            raise ValueError("empty training set")
        rng = np.random.default_rng(cfg.seed)

        steps_per_epoch = max(1, (len(train) + cfg.batch_size - 1) // cfg.batch_size)
        total_steps = steps_per_epoch * cfg.epochs
        optimizer = Adam(model.parameters(), lr=cfg.learning_rate)
        schedule = LinearWarmupDecay(
            optimizer, peak_lr=cfg.learning_rate,
            warmup_steps=steps_per_epoch * cfg.warmup_epochs,
            total_steps=total_steps,
        )
        stopper = EarlyStopping(cfg.patience)
        result = TrainResult()
        best_state = model.state_dict()
        lr_scale = 1.0

        checkpointer = (Checkpointer(checkpoint_dir, keep_last=cfg.keep_checkpoints)
                        if checkpoint_dir is not None else None)
        start_epoch = 0
        if checkpointer is not None and resume:
            state = checkpointer.load_latest()
            if state is not None:
                best_state = self._restore(state, model, optimizer, schedule,
                                           stopper, result, rng)
                start_epoch = state.epoch
                lr_scale = state.lr_scale
                # The resumed run replays from the boundary: drop the
                # steps past it so the series stays contiguous (each
                # step recorded exactly once).
                runstore.truncate_active(start_epoch * steps_per_epoch)
                runstore.record_event("resume", epoch=start_epoch)

        prober = (Prober(model, probes)
                  if probes is not None and probes.enabled else None)
        run = runstore.active()
        epoch = start_epoch
        fit_span = obs.span("trainer.fit", epochs=cfg.epochs,
                            start_epoch=start_epoch, batches=steps_per_epoch)
        with fit_span:
            while epoch < cfg.epochs and not result.stopped:
                fault_point("trainer.epoch_start")
                with obs.span("trainer.epoch", epoch=epoch):
                    model.train()
                    epoch_losses = []
                    skipped_this_epoch = 0
                    rolled_back = False
                    rollback_tried = False
                    probing = False
                    for step_in_epoch, batch in enumerate(
                            iter_batches(train, cfg.batch_size, rng=rng)):
                        gstep = epoch * steps_per_epoch + step_in_epoch
                        with obs.span("trainer.batch", size=batch.size) as bspan:
                            output = model(batch)
                            loss = model.loss(output, batch)
                            loss = fault_point("trainer.loss", loss)
                            if not np.isfinite(float(loss.data)):
                                # Poison batch: skip the update, keep the LR
                                # trajectory aligned with the step count.
                                model.zero_grad()
                                schedule.step()
                                result.nonfinite_skipped += 1
                                skipped_this_epoch += 1
                                obs.inc("trainer.nonfinite_skipped")
                                runstore.record_event("nonfinite_skip",
                                                      step=gstep)
                                bspan.set("skipped", "nonfinite")
                                if (skipped_this_epoch > cfg.max_nonfinite_batches
                                        and result.lr_halvings < cfg.max_lr_halvings
                                        and checkpointer is not None
                                        and not rollback_tried):
                                    rollback_tried = True
                                    restored = checkpointer.load_latest()
                                    if restored is not None:
                                        rolled_back = True
                                        break
                                continue
                            model.zero_grad()
                            loss.backward()
                            clip_grad_norm_(model.parameters(), cfg.max_grad_norm)
                            probing = (run is not None and prober is not None
                                       and prober.should_sample(gstep))
                            if probing:
                                probe_stats = prober.forward_stats(output, batch)
                                probe_stats.update(prober.grad_stats())
                                weights_before = prober.snapshot_weights()
                            optimizer.step()
                            if probing:
                                probe_stats.update(
                                    prober.update_stats(weights_before))
                            lr = schedule.step()
                            epoch_losses.append(float(loss.data))
                        if run is not None:
                            run.log_step(gstep, loss=float(loss.data), lr=lr,
                                         **(probe_stats if probing else {}))
                        if obs.enabled():
                            obs.gauge("trainer.loss", float(loss.data))
                            obs.gauge("trainer.lr", lr)

                    if rolled_back:
                        # The epoch diverged: rewind to the last good boundary
                        # and retry it at half the peak learning rate.  Counters
                        # accumulated since that boundary survive the rewind.
                        skipped_total = result.nonfinite_skipped
                        halvings = result.lr_halvings
                        failures = result.checkpoint_failures
                        best_state = self._restore(restored, model, optimizer,
                                                   schedule, stopper, result, rng)
                        result.nonfinite_skipped = skipped_total
                        result.lr_halvings = halvings + 1
                        result.checkpoint_failures = failures
                        obs.inc("trainer.rollbacks")
                        lr_scale = restored.lr_scale * 0.5
                        schedule.peak_lr = cfg.learning_rate * lr_scale
                        epoch = restored.epoch
                        # The rewound epochs will be replayed: drop their
                        # steps so the series stays contiguous.
                        runstore.truncate_active(epoch * steps_per_epoch)
                        runstore.record_event("rollback", epoch=epoch,
                                              lr_scale=lr_scale)
                        continue

                    epoch_loss = (float(np.mean(epoch_losses))
                                  if epoch_losses else float("nan"))
                    result.train_losses.append(epoch_loss)

                    valid_pairs_per_s = 0.0
                    with obs.span("trainer.validate", epoch=epoch):
                        if valid:
                            engine = self._engine(model)
                            out = engine.score_encoded(valid)
                            valid_f1 = binary_f1(out["labels"], out["em_pred"])
                            estats = engine.stats
                            if estats.wall_seconds > 0:
                                valid_pairs_per_s = estats.pairs_per_second
                        else:
                            valid_f1 = 0.0
                    obs.gauge("trainer.valid_f1", valid_f1)
                    if run is not None:
                        # Epoch-level channels land on the epoch's *last*
                        # batch step, so a resume truncation at the next
                        # boundary keeps this (already-validated) epoch.
                        run.log_step((epoch + 1) * steps_per_epoch - 1,
                                     valid_f1=valid_f1, epoch=epoch,
                                     epoch_loss=epoch_loss,
                                     valid_pairs_per_s=valid_pairs_per_s)
                    result.valid_f1s.append(valid_f1)
                    result.epochs_run = epoch + 1
                    if valid:
                        if valid_f1 > stopper.best:
                            best_state = model.state_dict()
                        result.stopped = stopper.update(valid_f1, epoch)
                    else:
                        # No validation set: the final weights win.
                        best_state = model.state_dict()

                    if checkpointer is not None:
                        try:
                            checkpointer.save(self._capture(
                                epoch + 1, model, best_state, optimizer, schedule,
                                stopper, result, rng, lr_scale))
                        except (OSError, CheckpointError):
                            # A failed save (e.g. ENOSPC) must not kill training;
                            # the previous checkpoint remains the resume point.
                            result.checkpoint_failures += 1
                            obs.inc("trainer.checkpoint_failures")
                    fault_point("trainer.epoch_end")
                epoch += 1

        model.load_state_dict(best_state)
        model.eval()
        result.best_valid_f1 = max(result.valid_f1s) if result.valid_f1s else 0.0
        # Without validation the stopper never runs: the restored weights
        # are the final epoch's, so report that epoch rather than -1.
        result.best_epoch = stopper.best_epoch if valid else result.epochs_run - 1
        return result

    def predict_all(self, model: EMModel, encoded: list[EncodedPair]
                    ) -> dict[str, np.ndarray]:
        """Predictions over a split, in input order (em + id heads)."""
        return self._engine(model).score_encoded(encoded)
