"""The multi-task training loop — Algorithm 1 of the paper.

Shared encoder parameters are pre-trained (BERT init); task-specific
layers are randomly initialized.  Mini-batches are shuffled each epoch;
each step computes the dual-objective loss (Eq. 3, delegated to the
model's ``loss``), backpropagates, and applies Adam under a linear
warmup-decay schedule.  Early stopping watches validation EM F1 with the
paper's patience mechanism, and the best validation snapshot is restored
at the end.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.loader import EncodedPair, iter_batches
from repro.engine import EngineConfig, InferenceEngine
from repro.eval.metrics import binary_f1
from repro.models.base import EMModel
from repro.nn.optim import Adam, clip_grad_norm_
from repro.nn.schedules import LinearWarmupDecay


@dataclass
class TrainConfig:
    """Hyperparameters of a fine-tuning run (paper defaults, mini scale)."""

    epochs: int = 12
    batch_size: int = 16
    learning_rate: float = 3e-4
    warmup_epochs: int = 1          # "one epoch warmup"
    patience: int = 4               # early stopping on validation F1
    max_grad_norm: float = 1.0
    seed: int = 0


@dataclass
class TrainResult:
    """Loss/metric history of a completed run."""

    train_losses: list[float] = field(default_factory=list)
    valid_f1s: list[float] = field(default_factory=list)
    best_valid_f1: float = 0.0
    best_epoch: int = -1
    epochs_run: int = 0


class EarlyStopping:
    """Stop when the watched metric fails to improve for ``patience`` epochs."""

    def __init__(self, patience: int):
        if patience < 1:
            raise ValueError("patience must be >= 1")
        self.patience = patience
        self.best = -np.inf
        self.best_epoch = -1
        self._since_best = 0

    def update(self, value: float, epoch: int) -> bool:
        """Record an epoch metric; return True when training should stop."""
        if value > self.best:
            self.best = value
            self.best_epoch = epoch
            self._since_best = 0
            return False
        self._since_best += 1
        return self._since_best >= self.patience


class Trainer:
    """Fits an :class:`EMModel` on encoded pairs."""

    def __init__(self, config: TrainConfig | None = None):
        self.config = config or TrainConfig()

    def _engine(self, model: EMModel, batch_size: int | None = None
                ) -> InferenceEngine:
        """The shared inference path (length-bucketed, ``no_grad``)."""
        return InferenceEngine(model, config=EngineConfig(
            batch_size=batch_size or self.config.batch_size))

    def evaluate_f1(self, model: EMModel, encoded: list[EncodedPair],
                    batch_size: int | None = None) -> float:
        """EM F1 over an encoded split."""
        if not encoded:
            return 0.0
        out = self._engine(model, batch_size).score_encoded(encoded)
        return binary_f1(out["labels"], out["em_pred"])

    def fit(self, model: EMModel, train: list[EncodedPair],
            valid: list[EncodedPair]) -> TrainResult:
        """Train with Algorithm 1 and restore the best validation state."""
        cfg = self.config
        if not train:
            raise ValueError("empty training set")
        rng = np.random.default_rng(cfg.seed)

        steps_per_epoch = max(1, (len(train) + cfg.batch_size - 1) // cfg.batch_size)
        total_steps = steps_per_epoch * cfg.epochs
        optimizer = Adam(model.parameters(), lr=cfg.learning_rate)
        schedule = LinearWarmupDecay(
            optimizer, peak_lr=cfg.learning_rate,
            warmup_steps=steps_per_epoch * cfg.warmup_epochs,
            total_steps=total_steps,
        )
        stopper = EarlyStopping(cfg.patience)
        result = TrainResult()
        best_state = model.state_dict()

        for epoch in range(cfg.epochs):
            model.train()
            epoch_losses = []
            for batch in iter_batches(train, cfg.batch_size, rng=rng):
                output = model(batch)
                loss = model.loss(output, batch)
                model.zero_grad()
                loss.backward()
                clip_grad_norm_(model.parameters(), cfg.max_grad_norm)
                optimizer.step()
                schedule.step()
                epoch_losses.append(float(loss.data))
            result.train_losses.append(float(np.mean(epoch_losses)))

            valid_f1 = self.evaluate_f1(model, valid) if valid else 0.0
            result.valid_f1s.append(valid_f1)
            result.epochs_run = epoch + 1
            if not valid:
                # No validation set: the final weights win.
                best_state = model.state_dict()
                continue
            if valid_f1 > stopper.best:
                best_state = model.state_dict()
            if stopper.update(valid_f1, epoch):
                break

        model.load_state_dict(best_state)
        model.eval()
        result.best_valid_f1 = max(result.valid_f1s) if result.valid_f1s else 0.0
        result.best_epoch = stopper.best_epoch
        return result

    def predict_all(self, model: EMModel, encoded: list[EncodedPair]
                    ) -> dict[str, np.ndarray]:
        """Predictions over a split, in input order (em + id heads)."""
        return self._engine(model).score_encoded(encoded)
