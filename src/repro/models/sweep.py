"""Learning-rate sweep (the paper's Sec. 4.2 protocol).

The paper sweeps the learning rate over a fixed candidate list and keeps
the configuration with the best validation F1.  :func:`sweep_learning_rate`
does the same: it trains one model per candidate (from identical initial
weights) and returns the winning model, rate, and per-candidate scores.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Sequence

from repro.data.loader import EncodedPair
from repro.models.base import EMModel
from repro.models.trainer import TrainConfig, Trainer

# The paper's sweep list is [1e-5 .. 1e-4] for BERT-base; mini models
# train an order of magnitude hotter, so the default list is shifted.
DEFAULT_CANDIDATES = (5e-4, 1e-3, 2e-3)


def sweep_learning_rate(model_factory: Callable[[], EMModel],
                        train: list[EncodedPair], valid: list[EncodedPair],
                        config: TrainConfig,
                        candidates: Sequence[float] = DEFAULT_CANDIDATES,
                        ) -> tuple[EMModel, float, dict[float, float]]:
    """Train one fresh model per candidate rate; keep the validation winner.

    ``model_factory`` must return a freshly initialized model each call
    (identical init given the caller's seeding), so candidates differ
    only in the learning rate.

    Returns ``(best_model, best_rate, {rate: best_valid_f1})``.
    """
    if not candidates:
        raise ValueError("candidates must be non-empty")
    scores: dict[float, float] = {}
    best_model: EMModel | None = None
    best_rate = float(candidates[0])
    best_f1 = -1.0
    for rate in candidates:
        model = model_factory()
        trainer = Trainer(replace(config, learning_rate=float(rate)))
        result = trainer.fit(model, train, valid)
        scores[float(rate)] = result.best_valid_f1
        if result.best_valid_f1 > best_f1:
            best_f1 = result.best_valid_f1
            best_rate = float(rate)
            best_model = model
    return best_model, best_rate, scores
