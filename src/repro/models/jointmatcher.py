"""JointMatcher analogue (Ye et al., KBS 2022).

JointMatcher augments a pre-trained transformer with a *relevance-aware*
encoder that concentrates attention on segments appearing in both
records, and a *numerically-aware* encoder emphasizing number-bearing
segments.  Our analogue computes the two emphasis masks directly from
the token ids — tokens shared by both records, and digit-bearing tokens
— attention-pools the sequence under each, and classifies the
concatenation with the pooled [CLS] vector.  Single-task, as in the
original.
"""

from __future__ import annotations

import numpy as np

from repro.data.loader import Batch
from repro.models.base import EMModel, EMOutput
from repro.models.ditto import informative_token_mask
from repro.models.heads import BinaryHead
from repro.nn import functional as F
from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.nn.tensor import concat
from repro.text.vocab import Vocabulary


def shared_token_mask(batch: Batch) -> np.ndarray:
    """(B, S) flag for tokens whose id occurs in *both* records' spans."""
    result = np.zeros_like(batch.mask1)
    for i in range(batch.input_ids.shape[0]):
        ids1 = set(batch.input_ids[i][batch.mask1[i] > 0].tolist())
        ids2 = set(batch.input_ids[i][batch.mask2[i] > 0].tolist())
        shared = ids1 & ids2
        if not shared:
            continue
        in_span = (batch.mask1[i] + batch.mask2[i]) > 0
        result[i] = np.isin(batch.input_ids[i], list(shared)) & in_span
    return result


class JointMatcher(EMModel):
    """Relevance-aware + numerically-aware emphasis over a transformer."""

    def __init__(self, encoder: Module, hidden: int, vocab: Vocabulary,
                 rng: np.random.Generator):
        super().__init__()
        self.encoder = encoder
        self._numeric = informative_token_mask(vocab)
        self.relevance_proj = Linear(hidden, hidden, rng)
        self.numeric_proj = Linear(hidden, hidden, rng)
        self.combine = Linear(3 * hidden, hidden, rng)
        self.em_head = BinaryHead(hidden, rng)

    def forward(self, batch: Batch) -> EMOutput:
        out = self.encoder(batch.input_ids, batch.attention_mask, batch.segment_ids)

        relevant = shared_token_mask(batch)
        numeric = self._numeric[batch.input_ids] * batch.attention_mask

        relevance_vec = F.tanh(self.relevance_proj(F.mean_pool(out.sequence, relevant)))
        numeric_vec = F.tanh(self.numeric_proj(F.mean_pool(out.sequence, numeric)))
        features = F.tanh(
            self.combine(concat([out.pooled, relevance_vec, numeric_vec], axis=-1))
        )
        return EMOutput(em_logits=self.em_head(features), attentions=out.attentions)
