"""JointBERT (Peeters & Bizer 2021) and the paper's ablation variants.

JointBERT uses the pooled ``[CLS]`` representation for all three tasks —
the design choice the paper identifies as suboptimal.  The variants
(Sec. 4.4) progressively relax that choice:

- ``JointBertS``: the first ``[SEP]`` token represents the second record
  for its ID head (Figure 4).
- ``JointBertT``: averaged token representations for all three tasks.
- ``JointBertCT``: averaged token aux heads, but [CLS] for the EM head.
"""

from __future__ import annotations

import numpy as np

from repro.data.loader import Batch
from repro.models.base import EMModel, EMOutput
from repro.models.heads import (
    BinaryHead,
    ClassHead,
    MeanTokenHead,
    gather_positions,
)
from repro.nn import functional as F
from repro.nn.module import Module


def _first_sep_positions(batch: Batch) -> np.ndarray:
    """Index of the first [SEP] for every row: right after record1's span."""
    return 1 + batch.mask1.sum(axis=1).astype(np.int64)


class JointBert(EMModel):
    """Dual-objective fine-tuning with [CLS] for all three tasks."""

    def __init__(self, encoder: Module, hidden: int, num_id_classes: int,
                 rng: np.random.Generator):
        super().__init__()
        self.encoder = encoder
        self.em_head = BinaryHead(hidden, rng)
        self.id1_head = ClassHead(hidden, num_id_classes, rng)
        self.id2_head = ClassHead(hidden, num_id_classes, rng)

    def forward(self, batch: Batch) -> EMOutput:
        out = self.encoder(batch.input_ids, batch.attention_mask, batch.segment_ids)
        return EMOutput(
            em_logits=self.em_head(out.pooled),
            id1_logits=self.id1_head(out.pooled),
            id2_logits=self.id2_head(out.pooled),
            attentions=out.attentions,
        )


class JointBertS(EMModel):
    """[CLS] for EM and ID1; the first [SEP] token for ID2 (Figure 4)."""

    def __init__(self, encoder: Module, hidden: int, num_id_classes: int,
                 rng: np.random.Generator):
        super().__init__()
        self.encoder = encoder
        self.em_head = BinaryHead(hidden, rng)
        self.id1_head = ClassHead(hidden, num_id_classes, rng)
        self.id2_head = ClassHead(hidden, num_id_classes, rng)

    def forward(self, batch: Batch) -> EMOutput:
        out = self.encoder(batch.input_ids, batch.attention_mask, batch.segment_ids)
        sep_vec = gather_positions(out.sequence, _first_sep_positions(batch))
        return EMOutput(
            em_logits=self.em_head(out.pooled),
            id1_logits=self.id1_head(out.pooled),
            id2_logits=self.id2_head(sep_vec),
            attentions=out.attentions,
        )


class JointBertT(EMModel):
    """Averaged token representations for all three tasks."""

    def __init__(self, encoder: Module, hidden: int, num_id_classes: int,
                 rng: np.random.Generator):
        super().__init__()
        self.encoder = encoder
        self.em_head = BinaryHead(hidden, rng)
        self.id1_head = MeanTokenHead(hidden, num_id_classes, rng)
        self.id2_head = MeanTokenHead(hidden, num_id_classes, rng)

    def forward(self, batch: Batch) -> EMOutput:
        out = self.encoder(batch.input_ids, batch.attention_mask, batch.segment_ids)
        mean1 = F.mean_pool(out.sequence, batch.mask1)
        mean2 = F.mean_pool(out.sequence, batch.mask2)
        em_input = (mean1 + mean2) * 0.5
        return EMOutput(
            em_logits=self.em_head(em_input),
            id1_logits=self.id1_head(out.sequence, batch.mask1),
            id2_logits=self.id2_head(out.sequence, batch.mask2),
            attentions=out.attentions,
        )


class JointBertCT(EMModel):
    """Averaged-token aux heads + [CLS] EM head."""

    def __init__(self, encoder: Module, hidden: int, num_id_classes: int,
                 rng: np.random.Generator):
        super().__init__()
        self.encoder = encoder
        self.em_head = BinaryHead(hidden, rng)
        self.id1_head = MeanTokenHead(hidden, num_id_classes, rng)
        self.id2_head = MeanTokenHead(hidden, num_id_classes, rng)

    def forward(self, batch: Batch) -> EMOutput:
        out = self.encoder(batch.input_ids, batch.attention_mask, batch.segment_ids)
        return EMOutput(
            em_logits=self.em_head(out.pooled),
            id1_logits=self.id1_head(out.sequence, batch.mask1),
            id2_logits=self.id2_head(out.sequence, batch.mask2),
            attentions=out.attentions,
        )
