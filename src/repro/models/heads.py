"""Classification heads shared across the EM models."""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.nn.tensor import Tensor


class BinaryHead(Module):
    """Linear layer producing a single raw match logit per example."""

    def __init__(self, hidden: int, rng: np.random.Generator):
        super().__init__()
        self.fc = Linear(hidden, 1, rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.fc(x).squeeze(-1)


class ClassHead(Module):
    """Linear layer over a pooled vector for the entity-ID softmax."""

    def __init__(self, hidden: int, num_classes: int, rng: np.random.Generator):
        super().__init__()
        self.fc = Linear(hidden, num_classes, rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.fc(x)


class TokenAggregationHead(Module):
    """EMBA's entity-ID head (Sec. 3.3): learned token aggregation.

    A task-specific linear scorer assigns a weight to every token of the
    record's span; a masked softmax normalizes the weights; the weighted
    sum of token embeddings feeds the class logits.  Each task thereby
    "identifies the subset of tokens that are indicative of the entity
    identifier".
    """

    def __init__(self, hidden: int, num_classes: int, rng: np.random.Generator):
        super().__init__()
        self.scorer = Linear(hidden, 1, rng)
        self.classifier = Linear(hidden, num_classes, rng)

    def forward(self, sequence: Tensor, span_mask: np.ndarray) -> Tensor:
        scores = self.scorer(sequence).squeeze(-1)                 # (B, S)
        bias = F.attention_mask_bias(span_mask, dtype=scores.dtype)
        weights = F.softmax(scores + Tensor(bias), axis=-1)        # (B, S)
        pooled = (sequence * weights.expand_dims(2)).sum(axis=1)   # (B, H)
        return self.classifier(pooled)


class MeanTokenHead(Module):
    """JointBERT-T/CT auxiliary head: plain masked-mean token pooling."""

    def __init__(self, hidden: int, num_classes: int, rng: np.random.Generator):
        super().__init__()
        self.classifier = Linear(hidden, num_classes, rng)

    def forward(self, sequence: Tensor, span_mask: np.ndarray) -> Tensor:
        pooled = F.mean_pool(sequence, span_mask)
        return self.classifier(pooled)


def gather_positions(sequence: Tensor, positions: np.ndarray) -> Tensor:
    """Select one token vector per batch row: (B, S, H)[i, positions[i]]."""
    batch = sequence.shape[0]
    return sequence[np.arange(batch), positions]
