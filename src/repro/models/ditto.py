"""DITTO analogue (Li et al., VLDB 2021).

DITTO casts EM as sequence-pair classification over a serialization with
structural ``[COL]``/``[VAL]`` tags and injects light domain knowledge
by highlighting informative spans.  Architecturally it is a single-task
fine-tuned transformer; the serialization difference lives in the data
pipeline (``PairEncoder(style="ditto")``), and the domain-knowledge
emphasis is reproduced here as an extra attention-pooled feature over
*number-bearing and model-code* tokens, DITTO's product-domain spans.
"""

from __future__ import annotations

import numpy as np

from repro.data.loader import Batch
from repro.models.base import EMModel, EMOutput
from repro.models.heads import BinaryHead
from repro.nn import functional as F
from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.nn.tensor import concat
from repro.text.vocab import Vocabulary


def informative_token_mask(vocab: Vocabulary) -> np.ndarray:
    """Per-vocab-id flag for digit-bearing tokens (DITTO's product spans)."""
    flags = np.zeros(len(vocab), dtype=np.float32)
    for i, token in enumerate(vocab.tokens()):
        body = token.removeprefix("##")
        if any(c.isdigit() for c in body):
            flags[i] = 1.0
    return flags


class Ditto(EMModel):
    """Single-task matcher + pooled emphasis on domain-knowledge tokens."""

    serialization_style = "ditto"

    def __init__(self, encoder: Module, hidden: int, vocab: Vocabulary,
                 rng: np.random.Generator):
        super().__init__()
        self.encoder = encoder
        self._informative = informative_token_mask(vocab)
        self.combine = Linear(2 * hidden, hidden, rng)
        self.em_head = BinaryHead(hidden, rng)

    def forward(self, batch: Batch) -> EMOutput:
        out = self.encoder(batch.input_ids, batch.attention_mask, batch.segment_ids)
        # Rows with no digit-bearing tokens pool to a zero emphasis vector
        # (mean_pool clamps the denominator).
        span_mask = self._informative[batch.input_ids] * batch.attention_mask
        emphasis = F.mean_pool(out.sequence, span_mask)
        features = F.tanh(self.combine(concat([out.pooled, emphasis], axis=-1)))
        return EMOutput(em_logits=self.em_head(features), attentions=out.attentions)
