"""Attention-over-attention (AoA) — the paper's Section 3.4 module.

Given the token representations of the two records, AoA computes

- the pairwise interaction matrix ``I = E1 @ E2^T``;
- ``alpha``: column-wise softmax of ``I`` (a distribution over record1
  tokens for every record2 token);
- ``beta``: row-wise softmax of ``I`` (record1 -> record2 attention);
- ``beta_bar``: the column-wise average of ``beta`` — "the averaged
  second entity attention";
- ``gamma = alpha @ beta_bar`` — attention *over* attention, a
  distribution over record1 tokens (it sums to one because every column
  of ``alpha`` does and ``beta_bar`` does);
- the classifier input ``x = gamma^T @ E1 ∈ R^h``.

Our implementation runs batched over padded sequences with *masked*
softmaxes, which is mathematically identical to the paper's
sample-by-sample computation on the true (un-padded) spans.  Setting
``masked=False`` reproduces the paper's negative result for naive
padding ("the intermediate padding for the AOA will skew the
representation"): padding positions then leak probability mass.
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.module import Module
from repro.nn.tensor import Tensor


class AttentionOverAttention(Module):
    """Batched AoA over a shared padded sequence with two span masks."""

    def __init__(self, masked: bool = True):
        super().__init__()
        self.masked = masked

    def forward(self, sequence: Tensor, mask1: np.ndarray, mask2: np.ndarray
                ) -> tuple[Tensor, np.ndarray]:
        """Compute the AoA-pooled record1 representation.

        Parameters
        ----------
        sequence:
            ``(B, S, H)`` last-layer token representations.
        mask1, mask2:
            ``(B, S)`` 0/1 masks selecting each record's description
            tokens within the packed sequence.

        Returns
        -------
        (x, gamma):
            ``x`` is the ``(B, H)`` classifier input; ``gamma`` the
            ``(B, S)`` token-importance distribution over record1
            (a plain ndarray for analysis).
        """
        interactions = sequence @ sequence.swapaxes(1, 2)  # (B, S, S)

        if self.masked:
            # alpha: softmax over record1 positions (axis=1) per column.
            row_bias = F.attention_mask_bias(mask1[:, :, None], dtype=interactions.dtype)
            alpha = F.softmax(interactions + Tensor(row_bias), axis=1)
            # beta: softmax over record2 positions (axis=2) per row.
            col_bias = F.attention_mask_bias(mask2[:, None, :], dtype=interactions.dtype)
            beta = F.softmax(interactions + Tensor(col_bias), axis=2)
        else:
            alpha = F.softmax(interactions, axis=1)
            beta = F.softmax(interactions, axis=2)

        # beta_bar: average beta over record1 rows -> (B, S) over columns.
        m1 = Tensor(np.asarray(mask1, dtype=sequence.dtype.type))
        counts1 = Tensor(
            np.maximum(np.asarray(mask1, dtype=np.float64).sum(axis=1), 1.0)
            .astype(sequence.dtype.type)[:, None]
        )
        beta_bar = (beta * m1.expand_dims(2)).sum(axis=1) / counts1  # (B, S)

        # gamma_i = sum_t alpha[i, t] * beta_bar[t], restricted to record2 cols.
        m2 = Tensor(np.asarray(mask2, dtype=sequence.dtype.type))
        gamma = (alpha * (beta_bar * m2).expand_dims(1)).sum(axis=2)  # (B, S)

        # x = gamma^T @ E1.
        x = (sequence * gamma.expand_dims(2)).sum(axis=1)  # (B, H)
        return x, gamma.data
