"""SurfCon-style context matcher (ablation EMBA-SurfCon).

SurfCon (Wang et al., KDD 2019) scores term pairs by combining a
sequence-level encoding with a token-level *context matching* component:
every token of one term is softly matched to its most similar token of
the other term, and the matched evidence is aggregated.  Here the module
replaces EMBA's AoA while keeping the rest of the architecture fixed,
exactly as in the paper's ablation.
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.nn.tensor import Tensor, concat


class SurfConMatcher(Module):
    """Bilinear soft-max matching + mean sequence encoding."""

    def __init__(self, hidden: int, rng: np.random.Generator):
        super().__init__()
        self.bilinear = Linear(hidden, hidden, rng, bias=False)
        self.combine = Linear(2 * hidden, hidden, rng)

    def forward(self, sequence: Tensor, mask1: np.ndarray, mask2: np.ndarray
                ) -> Tensor:
        # Token-level: each record1 token attends to record2 tokens
        # through a bilinear form; a sharp softmax approximates SurfCon's
        # max-pooling over the context.
        projected = self.bilinear(sequence)                       # (B, S, H)
        scores = sequence @ projected.swapaxes(1, 2)              # (B, S, S)
        col_bias = F.attention_mask_bias(mask2[:, None, :], dtype=scores.dtype)
        match = F.softmax(scores * 4.0 + Tensor(col_bias), axis=2)  # sharpened
        matched = match @ sequence                                 # (B, S, H)
        token_level = F.mean_pool(matched, mask1)                  # (B, H)

        # Sequence-level: mean encoding of both records together.
        both = np.asarray(mask1, dtype=np.float32) + np.asarray(mask2, dtype=np.float32)
        seq_level = F.mean_pool(sequence, both)                    # (B, H)

        return F.tanh(self.combine(concat([token_level, seq_level], axis=-1)))
