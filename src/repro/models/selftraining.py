"""Semi-supervised self-training (the paper's Sec. 5 future work).

"A semi-supervised approach that uses a small portion of the training
labels can be explored.  Similarly, self-learning ... may yield
generalizable representations that improve EM performance with fewer or
no labeled data."

:func:`self_train` implements the classic self-training loop: fit on
the labeled pool, pseudo-label the unlabeled pool where the model is
confident on the EM task, fold the confident pseudo-labels in, and
refit — for a fixed number of rounds or until no new pseudo-labels
appear.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Callable

from repro.data.loader import EncodedPair
from repro.models.base import EMModel
from repro.models.trainer import TrainConfig, Trainer


@dataclass
class SelfTrainingResult:
    """Final model plus per-round bookkeeping."""

    model: EMModel
    rounds_run: int
    pseudo_labels_per_round: list[int] = field(default_factory=list)
    valid_f1_per_round: list[float] = field(default_factory=list)


def _pseudo_label(model: EMModel, unlabeled: list[EncodedPair],
                  confidence: float, batch_size: int) -> list[EncodedPair]:
    """Confidently-predicted copies of unlabeled pairs (EM label only)."""
    confident: list[EncodedPair] = []
    probs = model.predict_proba(unlabeled, batch_size=batch_size)
    for pair, prob in zip(unlabeled, probs):
        if prob >= confidence or prob <= 1.0 - confidence:
            labeled = copy.copy(pair)
            labeled.label = int(prob >= 0.5)
            confident.append(labeled)
    return confident


def self_train(model_factory: Callable[[], EMModel],
               labeled: list[EncodedPair], unlabeled: list[EncodedPair],
               valid: list[EncodedPair], config: TrainConfig,
               rounds: int = 2, confidence: float = 0.9) -> SelfTrainingResult:
    """Iteratively expand the training pool with confident pseudo-labels.

    ``model_factory`` must build a fresh model per round (self-training
    retrains from scratch so early pseudo-label mistakes don't compound
    through warm-started weights).
    """
    if not 0.5 < confidence < 1.0:
        raise ValueError("confidence must be in (0.5, 1)")
    if rounds < 1:
        raise ValueError("rounds must be >= 1")

    trainer = Trainer(config)
    model = model_factory()
    trainer.fit(model, labeled, valid)
    result = SelfTrainingResult(model=model, rounds_run=1)
    result.valid_f1_per_round.append(trainer.evaluate_f1(model, valid))
    result.pseudo_labels_per_round.append(0)

    remaining = list(unlabeled)
    pool = list(labeled)
    for _ in range(1, rounds):
        confident = _pseudo_label(model, remaining, confidence,
                                  config.batch_size)
        if not confident:
            break
        # Remove pseudo-labeled items from the unlabeled pool; the shallow
        # copies share their input_ids array with the originals, so array
        # identity links them.
        taken = {id(c.input_ids) for c in confident}
        remaining = [u for u in remaining if id(u.input_ids) not in taken]
        pool = pool + confident

        model = model_factory()
        trainer.fit(model, pool, valid)
        result.model = model
        result.rounds_run += 1
        result.pseudo_labels_per_round.append(len(confident))
        result.valid_f1_per_round.append(trainer.evaluate_f1(model, valid))
    return result
