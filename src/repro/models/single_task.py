"""Single-task transformer matchers: the BERT and RoBERTa baselines.

Fine-tune the encoder with a binary head over the pooled ``[CLS]``
vector — the standard sequence-pair classification recipe the paper's
Figure 1b depicts.  The RoBERTa baseline is the same class backed by the
``mini-roberta`` encoder preset (no segment embeddings, longer MLM
pre-training).
"""

from __future__ import annotations

import numpy as np

from repro.data.loader import Batch
from repro.models.base import EMModel, EMOutput
from repro.models.heads import BinaryHead
from repro.nn.module import Module


class SingleTaskMatcher(EMModel):
    """[CLS] -> linear -> match logit; no auxiliary objectives."""

    def __init__(self, encoder: Module, hidden: int, rng: np.random.Generator):
        super().__init__()
        self.encoder = encoder
        self.em_head = BinaryHead(hidden, rng)

    def forward(self, batch: Batch) -> EMOutput:
        out = self.encoder(batch.input_ids, batch.attention_mask, batch.segment_ids)
        return EMOutput(em_logits=self.em_head(out.pooled), attentions=out.attentions)
