"""Active learning by uncertainty sampling.

Complements :mod:`repro.models.selftraining` on the paper's low-label
future-work axis: instead of trusting confident pseudo-labels, the
active loop *asks an oracle* for the labels the model is least sure
about — the standard uncertainty-sampling recipe used throughout the
low-resource EM literature.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.data.loader import EncodedPair
from repro.models.base import EMModel
from repro.models.trainer import TrainConfig, Trainer


@dataclass
class ActiveLearningResult:
    """Final model plus per-round bookkeeping."""

    model: EMModel
    rounds_run: int
    labeled_per_round: list[int] = field(default_factory=list)
    valid_f1_per_round: list[float] = field(default_factory=list)


def uncertainty(probabilities: np.ndarray) -> np.ndarray:
    """Distance from the decision boundary (smaller = more uncertain)."""
    return np.abs(np.asarray(probabilities) - 0.5)


def active_learn(model_factory: Callable[[], EMModel],
                 labeled: list[EncodedPair], unlabeled: list[EncodedPair],
                 valid: list[EncodedPair], config: TrainConfig,
                 rounds: int = 3, budget_per_round: int = 16,
                 batch_size: int = 32) -> ActiveLearningResult:
    """Uncertainty-sampling loop.

    Each round trains a fresh model on the labeled pool, scores the
    unlabeled pool, and moves the ``budget_per_round`` most uncertain
    pairs into the pool with their true labels (the oracle here is the
    pairs' own ``label`` field, as in any benchmark simulation of
    active learning).
    """
    if rounds < 1:
        raise ValueError("rounds must be >= 1")
    if budget_per_round < 1:
        raise ValueError("budget_per_round must be >= 1")

    trainer = Trainer(config)
    pool = list(labeled)
    remaining = list(unlabeled)

    model = model_factory()
    trainer.fit(model, pool, valid)
    result = ActiveLearningResult(model=model, rounds_run=1)
    result.labeled_per_round.append(len(pool))
    result.valid_f1_per_round.append(trainer.evaluate_f1(model, valid))

    for _ in range(1, rounds):
        if not remaining:
            break
        probs = model.predict_proba(remaining, batch_size=batch_size)
        scores = uncertainty(probs)
        order = np.argsort(scores)  # most uncertain first
        picked = set(order[:budget_per_round].tolist())
        pool.extend(remaining[i] for i in picked)
        remaining = [p for i, p in enumerate(remaining) if i not in picked]

        model = model_factory()
        trainer.fit(model, pool, valid)
        result.model = model
        result.rounds_run += 1
        result.labeled_per_round.append(len(pool))
        result.valid_f1_per_round.append(trainer.evaluate_f1(model, valid))
    return result
