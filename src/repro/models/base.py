"""Shared EM model interface.

Every model consumes a :class:`repro.data.loader.Batch` and produces an
:class:`EMOutput`; multi-task models also fill the two entity-ID logit
fields.  ``loss`` implements the paper's Eq. 3 when auxiliary logits are
present and plain BCE otherwise, so the trainer is model-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.loader import Batch
from repro.nn.losses import binary_cross_entropy_with_logits, cross_entropy
from repro.nn.module import Module
from repro.nn.tensor import Tensor, no_grad


@dataclass
class EMOutput:
    """Model outputs for one batch."""

    em_logits: Tensor                       # (B,) raw match logits
    id1_logits: Tensor | None = None        # (B, C)
    id2_logits: Tensor | None = None        # (B, C)
    attentions: list[np.ndarray] = field(default_factory=list)
    # EMBA's AoA token-importance distribution over record1 (B, S);
    # None for non-AoA models.  Used by the case-study analysis.
    aoa_gamma: np.ndarray | None = None


class EMModel(Module):
    """Base class: forward(batch) -> EMOutput plus loss/prediction glue."""

    #: positive-class weight for the BCE term (DeepMatcher sets this from
    #: the training distribution; None elsewhere).
    pos_weight: float | None = None

    def forward(self, batch: Batch) -> EMOutput:
        raise NotImplementedError

    def loss(self, output: EMOutput, batch: Batch) -> Tensor:
        """Eq. 3: ``BCE(em) + CE(id1) + CE(id2)`` (aux terms if present)."""
        total = binary_cross_entropy_with_logits(
            output.em_logits, batch.labels, pos_weight=self.pos_weight
        )
        if output.id1_logits is not None:
            total = total + cross_entropy(output.id1_logits, batch.id1)
        if output.id2_logits is not None:
            total = total + cross_entropy(output.id2_logits, batch.id2)
        return total

    def predict(self, batch: Batch, threshold: float = 0.5) -> dict[str, np.ndarray]:
        """Inference-mode predictions for one batch.

        Returns a dict with ``em_prob``, ``em_pred`` and (for multi-task
        models) ``id1_pred`` / ``id2_pred`` arrays.
        """
        was_training = self.training
        self.eval()
        try:
            with no_grad():
                output = self(batch)
        finally:
            if was_training:
                self.train()
        logits = output.em_logits.data
        probs = 1.0 / (1.0 + np.exp(-np.clip(logits, -60, 60)))
        result = {
            "em_prob": probs,
            "em_pred": (probs >= threshold).astype(np.int64),
        }
        if output.id1_logits is not None:
            result["id1_pred"] = output.id1_logits.data.argmax(axis=-1)
        if output.id2_logits is not None:
            result["id2_pred"] = output.id2_logits.data.argmax(axis=-1)
        return result

    def predict_proba(self, encoded: list, batch_size: int = 32) -> np.ndarray:
        """Match probabilities over encoded pairs, in input order.

        Routes through the shared :class:`~repro.engine.core.InferenceEngine`
        (length-bucketed batches, guaranteed ``no_grad``).
        """
        # Imported here: the engine sits above the model layer.
        from repro.engine import EngineConfig, InferenceEngine

        engine = InferenceEngine(self, config=EngineConfig(batch_size=batch_size))
        return engine.score_encoded(encoded)["em_prob"]
