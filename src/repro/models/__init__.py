"""repro.models — EM models: the paper's contribution and every baseline.

========================  =====================================================
class                     paper reference
========================  =====================================================
``Emba``                  the proposed model (token-rep ID heads + AoA EM head)
``EmbaCls``               ablation: [CLS] aux heads + AoA EM head (EMBA-CLS)
``EmbaSurfCon``           ablation: SurfCon context matcher instead of AoA
``EmbaDual``              late-interaction variant: independent record
                          encodes + AoA pair head (engine-cacheable)
``JointBert``             Peeters & Bizer's dual-objective baseline
``JointBertS``            ablation: [SEP] token for the 2nd ID task
``JointBertT``            ablation: averaged token reps for all tasks
``JointBertCT``           ablation: averaged token aux heads + [CLS] EM head
``SingleTaskMatcher``     BERT / RoBERTa fine-tuning baselines
``Ditto``                 DITTO ([COL]/[VAL] serialization, single task)
``DeepMatcher``           RNN attribute-summarizer baseline
``JointMatcher``          relevance- + number-aware encoder baseline
========================  =====================================================

All encoder-based models accept any encoder honouring the
:class:`repro.bert.model.BertModel` output contract, which is how the
EMBA (FT)/(SB)/(DB) variants are expressed.
"""

from repro.models.active import ActiveLearningResult, active_learn
from repro.models.aoa import AttentionOverAttention
from repro.models.base import EMModel, EMOutput
from repro.models.deepmatcher import DeepMatcher
from repro.models.ditto import Ditto
from repro.models.emba import Emba, EmbaCls, EmbaSurfCon
from repro.models.emba_dual import EmbaDual
from repro.models.jointbert import JointBert, JointBertCT, JointBertS, JointBertT
from repro.models.jointmatcher import JointMatcher
from repro.models.selftraining import SelfTrainingResult, self_train
from repro.models.single_task import SingleTaskMatcher
from repro.models.sweep import sweep_learning_rate
from repro.models.surfcon import SurfConMatcher
from repro.models.trainer import EarlyStopping, TrainConfig, Trainer, TrainResult

__all__ = [
    "ActiveLearningResult",
    "AttentionOverAttention",
    "DeepMatcher",
    "Ditto",
    "EMModel",
    "EMOutput",
    "EarlyStopping",
    "Emba",
    "EmbaCls",
    "EmbaDual",
    "EmbaSurfCon",
    "JointBert",
    "JointBertCT",
    "JointBertS",
    "JointBertT",
    "JointMatcher",
    "SelfTrainingResult",
    "SingleTaskMatcher",
    "SurfConMatcher",
    "TrainConfig",
    "TrainResult",
    "Trainer",
    "active_learn",
    "self_train",
    "sweep_learning_rate",
]
