"""Pre-training corpus construction.

The original EMBA starts from BERT weights pre-trained on a general
corpus.  We emulate that by pre-training the mini encoders with MLM on
the pool of entity descriptions from the benchmark datasets — the same
"domain text, no pair labels" signal self-supervised pre-training
provides.
"""

from __future__ import annotations

from typing import Iterable

from repro.data.schema import EMDataset


def build_corpus(datasets: Iterable[EMDataset]) -> list[str]:
    """Deduplicated entity-description texts across datasets (train+valid).

    Test descriptions are excluded so pre-training never sees held-out
    surface forms paired together (they still share the vocabulary, as in
    any real pre-trained-model setup).
    """
    seen: set[str] = set()
    corpus: list[str] = []
    for dataset in datasets:
        for pair in dataset.train + dataset.valid:
            for record in (pair.record1, pair.record2):
                text = record.text()
                if text and text not in seen:
                    seen.add(text)
                    corpus.append(text)
    return corpus
