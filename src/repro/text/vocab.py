"""Vocabulary: a bidirectional token <-> id mapping with special tokens."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.text.special_tokens import PAD_TOKEN, SPECIAL_TOKENS, UNK_TOKEN


class Vocabulary:
    """Immutable-after-construction token table.

    Special tokens always occupy the first ids in :data:`SPECIAL_TOKENS`
    order, so ``pad_id == 0`` everywhere in the library.
    """

    def __init__(self, tokens: Iterable[str]):
        self._token_to_id: dict[str, int] = {}
        self._id_to_token: list[str] = []
        for token in SPECIAL_TOKENS:
            self._add(token)
        for token in tokens:
            self._add(token)

    def _add(self, token: str) -> None:
        if token not in self._token_to_id:
            self._token_to_id[token] = len(self._id_to_token)
            self._id_to_token.append(token)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._id_to_token)

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    def token_to_id(self, token: str) -> int:
        """Map token to id, falling back to ``[UNK]``."""
        return self._token_to_id.get(token, self._token_to_id[UNK_TOKEN])

    def id_to_token(self, index: int) -> str:
        return self._id_to_token[index]

    @property
    def pad_id(self) -> int:
        return self._token_to_id[PAD_TOKEN]

    @property
    def unk_id(self) -> int:
        return self._token_to_id[UNK_TOKEN]

    def special_ids(self) -> set[int]:
        return {self._token_to_id[t] for t in SPECIAL_TOKENS}

    def tokens(self) -> list[str]:
        """All tokens in id order (including the specials)."""
        return list(self._id_to_token)

    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self._id_to_token), encoding="utf-8")

    @classmethod
    def load(cls, path: str | Path) -> "Vocabulary":
        tokens = json.loads(Path(path).read_text(encoding="utf-8"))
        specials = set(SPECIAL_TOKENS)
        return cls(t for t in tokens if t not in specials)
