"""Hashed character n-gram featurizer (the fastText subword scheme).

fastText represents a word as the sum of embeddings of its character
n-grams (with boundary markers ``<`` and ``>``), each mapped to a bucket
by hashing.  :class:`SubwordHasher` reproduces that scheme with the FNV-1a
hash fastText uses.
"""

from __future__ import annotations

from repro.text.normalize import basic_tokenize

_FNV_PRIME = 0x01000193
_FNV_OFFSET = 0x811C9DC5


def fnv1a(text: str) -> int:
    """32-bit FNV-1a hash (the hash fastText uses for n-gram buckets)."""
    value = _FNV_OFFSET
    for byte in text.encode("utf-8"):
        value ^= byte
        value = (value * _FNV_PRIME) & 0xFFFFFFFF
    return value


class SubwordHasher:
    """Map words to hashed character-n-gram bucket ids.

    Parameters
    ----------
    num_buckets:
        Size of the hash embedding table.
    min_n, max_n:
        Range of character n-gram lengths (fastText defaults: 3..6).
    """

    def __init__(self, num_buckets: int = 4096, min_n: int = 3, max_n: int = 5):
        if min_n < 1 or max_n < min_n:
            raise ValueError("require 1 <= min_n <= max_n")
        if num_buckets < 1:
            raise ValueError("num_buckets must be positive")
        self.num_buckets = num_buckets
        self.min_n = min_n
        self.max_n = max_n

    def ngrams(self, word: str) -> list[str]:
        """Boundary-marked character n-grams plus the full word itself."""
        marked = f"<{word}>"
        grams = [marked]
        for n in range(self.min_n, self.max_n + 1):
            if n >= len(marked):
                continue
            grams.extend(marked[i:i + n] for i in range(len(marked) - n + 1))
        return grams

    def word_buckets(self, word: str) -> list[int]:
        """Hash bucket ids for a word's n-grams (deterministic)."""
        return [fnv1a(g) % self.num_buckets for g in self.ngrams(word)]

    def text_buckets(self, text: str) -> list[list[int]]:
        """Per-word bucket lists for a whole text."""
        return [self.word_buckets(w) for w in basic_tokenize(text)]
