"""Text normalization and pre-tokenization.

Matches the behaviour of BERT's ``BasicTokenizer`` closely enough for EM:
lowercasing, whitespace cleanup, and splitting punctuation into separate
tokens while keeping alphanumeric runs (model numbers like
``sdcfh-004g-a11`` split on the hyphens, exactly as WordPiece's
pre-tokenizer does).
"""

from __future__ import annotations

import re

_WHITESPACE = re.compile(r"\s+")
# A token is either a run of alphanumerics or a single punctuation mark.
_TOKEN = re.compile(r"[a-z0-9]+|[^a-z0-9\s]")


def normalize_text(text: str) -> str:
    """Lowercase and collapse whitespace; strip control characters."""
    text = text.lower()
    text = "".join(ch for ch in text if ch.isprintable() or ch in "\t\n ")
    return _WHITESPACE.sub(" ", text).strip()


def basic_tokenize(text: str) -> list[str]:
    """Split normalized text into word and punctuation tokens.

    >>> basic_tokenize("SanDisk SDCFH-004G 4GB!")
    ['sandisk', 'sdcfh', '-', '004g', '4gb', '!']
    """
    return _TOKEN.findall(normalize_text(text))
