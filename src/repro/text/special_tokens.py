"""Special tokens shared by the tokenizer, serializers, and models.

``[CLS]``/``[SEP]`` frame the BERT sequence-pair input; ``[PAD]`` and
``[MASK]`` serve batching and MLM pre-training; ``[COL]``/``[VAL]`` are
DITTO's structural tags for attribute delimiting.
"""

PAD_TOKEN = "[PAD]"
UNK_TOKEN = "[UNK]"
CLS_TOKEN = "[CLS]"
SEP_TOKEN = "[SEP]"
MASK_TOKEN = "[MASK]"
COL_TOKEN = "[COL]"
VAL_TOKEN = "[VAL]"

# Order fixes the ids of the special tokens at the head of every vocab.
SPECIAL_TOKENS = (
    PAD_TOKEN,
    UNK_TOKEN,
    CLS_TOKEN,
    SEP_TOKEN,
    MASK_TOKEN,
    COL_TOKEN,
    VAL_TOKEN,
)
