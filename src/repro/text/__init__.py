"""repro.text — tokenization substrate.

Implements the text pipeline HuggingFace provides in the original EMBA:
normalization, vocabulary management, a trainable WordPiece tokenizer
(greedy longest-match-first with ``##`` continuation pieces), the special
tokens used by BERT-style EM serialization, and the hashed character
n-gram featurizer backing the fastText variant.
"""

from repro.text.normalize import basic_tokenize, normalize_text
from repro.text.special_tokens import (
    CLS_TOKEN,
    COL_TOKEN,
    MASK_TOKEN,
    PAD_TOKEN,
    SEP_TOKEN,
    SPECIAL_TOKENS,
    UNK_TOKEN,
    VAL_TOKEN,
)
from repro.text.subword import SubwordHasher
from repro.text.vocab import Vocabulary
from repro.text.wordpiece import WordPieceTokenizer, train_wordpiece

__all__ = [
    "CLS_TOKEN",
    "COL_TOKEN",
    "MASK_TOKEN",
    "PAD_TOKEN",
    "SEP_TOKEN",
    "SPECIAL_TOKENS",
    "SubwordHasher",
    "UNK_TOKEN",
    "VAL_TOKEN",
    "Vocabulary",
    "WordPieceTokenizer",
    "basic_tokenize",
    "normalize_text",
    "train_wordpiece",
]
