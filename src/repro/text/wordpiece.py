"""Trainable WordPiece tokenizer.

Training follows the WordPiece criterion: starting from a character
alphabet (continuation pieces prefixed with ``##``), repeatedly merge the
adjacent symbol pair that maximizes ``count(ab) / (count(a) * count(b))``
until the requested vocabulary size is reached.  Encoding is BERT's
greedy longest-match-first algorithm with an ``[UNK]`` fallback.
"""

from __future__ import annotations

import re
from collections import Counter
from typing import Iterable

from repro.text.normalize import basic_tokenize
from repro.text.special_tokens import SPECIAL_TOKENS, UNK_TOKEN
from repro.text.vocab import Vocabulary

# Split out special tokens before normalization so serializer-inserted
# structural tags ([COL], [VAL], ...) survive tokenization intact.
_SPECIAL_SPLIT = re.compile(
    "(" + "|".join(re.escape(t) for t in SPECIAL_TOKENS) + ")"
)

_MAX_CHARS_PER_WORD = 64


def _word_to_symbols(word: str) -> tuple[str, ...]:
    """Split a word into its initial WordPiece symbols (char-level)."""
    return tuple([word[0]] + [f"##{c}" for c in word[1:]])


def _merge_symbols(a: str, b: str) -> str:
    """Concatenate two symbols, keeping a single ``##`` marker."""
    return a + b.removeprefix("##")


def train_wordpiece(texts: Iterable[str], vocab_size: int,
                    min_frequency: int = 2) -> Vocabulary:
    """Learn a WordPiece vocabulary of at most ``vocab_size`` entries.

    Parameters
    ----------
    texts:
        Training corpus (each item is normalized and pre-tokenized).
    vocab_size:
        Target total vocabulary size, including the special tokens and the
        character alphabet.
    min_frequency:
        Pairs rarer than this are never merged.
    """
    if vocab_size <= len(SPECIAL_TOKENS):
        raise ValueError(f"vocab_size must exceed {len(SPECIAL_TOKENS)} special tokens")

    word_counts: Counter[str] = Counter()
    for text in texts:
        word_counts.update(basic_tokenize(text))

    # Words as mutable symbol sequences, weighted by corpus frequency.
    words: list[list[str]] = []
    freqs: list[int] = []
    for word, count in word_counts.items():
        words.append(list(_word_to_symbols(word)))
        freqs.append(count)

    symbols: Counter[str] = Counter()
    for word, freq in zip(words, freqs):
        for s in word:
            symbols[s] += freq
    vocab_tokens: list[str] = sorted(symbols)

    budget = vocab_size - len(SPECIAL_TOKENS) - len(vocab_tokens)
    while budget > 0:
        pair_counts: Counter[tuple[str, str]] = Counter()
        for word, freq in zip(words, freqs):
            for a, b in zip(word, word[1:]):
                pair_counts[(a, b)] += freq
        # min_frequency FILTERS candidates (as in HuggingFace's trainer):
        # the WordPiece score favours rare-symbol pairs, so a count-1 pair
        # can outscore frequent ones and must not end training.
        candidates = {p: c for p, c in pair_counts.items() if c >= min_frequency}
        if not candidates:
            break

        def score(item: tuple[tuple[str, str], int]) -> tuple[float, int, tuple[str, str]]:
            (a, b), count = item
            # WordPiece likelihood gain; deterministic tie-breaks.
            return (count / (symbols[a] * symbols[b]), count, (a, b))

        (best_a, best_b), best_count = max(candidates.items(), key=score)
        merged = _merge_symbols(best_a, best_b)
        vocab_tokens.append(merged)
        budget -= 1

        for word, freq in zip(words, freqs):
            i = 0
            while i < len(word) - 1:
                if word[i] == best_a and word[i + 1] == best_b:
                    symbols[best_a] -= freq
                    symbols[best_b] -= freq
                    symbols[merged] += freq
                    word[i:i + 2] = [merged]
                else:
                    i += 1

    return Vocabulary(vocab_tokens)


class WordPieceTokenizer:
    """Greedy longest-match-first WordPiece encoder over a vocabulary."""

    def __init__(self, vocab: Vocabulary):
        self.vocab = vocab

    def tokenize_word(self, word: str) -> list[str]:
        """Split one pre-token into WordPiece symbols (or ``[UNK]``)."""
        if len(word) > _MAX_CHARS_PER_WORD:
            return [UNK_TOKEN]
        pieces: list[str] = []
        start = 0
        while start < len(word):
            end = len(word)
            piece = None
            while start < end:
                candidate = word[start:end]
                if start > 0:
                    candidate = f"##{candidate}"
                if candidate in self.vocab:
                    piece = candidate
                    break
                end -= 1
            if piece is None:
                return [UNK_TOKEN]
            pieces.append(piece)
            start = end
        return pieces

    def tokenize(self, text: str) -> list[str]:
        """Normalize, pre-tokenize, and WordPiece-split ``text``.

        Special tokens embedded in the text (e.g. DITTO's ``[COL]`` and
        ``[VAL]`` serialization tags) are preserved as single pieces.
        """
        pieces: list[str] = []
        for chunk in _SPECIAL_SPLIT.split(text):
            if not chunk:
                continue
            if chunk in SPECIAL_TOKENS:
                pieces.append(chunk)
                continue
            for word in basic_tokenize(chunk):
                pieces.extend(self.tokenize_word(word))
        return pieces

    def encode(self, text: str) -> list[int]:
        """Token ids for ``text`` (no special tokens added)."""
        return [self.vocab.token_to_id(p) for p in self.tokenize(text)]

    def decode(self, ids: Iterable[int]) -> str:
        """Best-effort inverse of :meth:`encode` (joins ``##`` pieces)."""
        words: list[str] = []
        for i in ids:
            token = self.vocab.id_to_token(i)
            if token.startswith("##") and words:
                words[-1] += token[2:]
            else:
                words.append(token)
        return " ".join(words)
