"""Hard-negative mining for training-set construction.

The paper's benchmarks ship with hard negatives built in; when building
a training set from raw collections, the standard recipe is to mine
them with a blocker: candidate pairs that survive blocking but are
*not* gold matches share enough surface tokens to be informative
negatives (random negatives are trivially separable and teach the
matcher little).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.blocking.base import Blocker
from repro.data.schema import EntityPair, EntityRecord


def mine_hard_negatives(left: Sequence[EntityRecord],
                        right: Sequence[EntityRecord],
                        blocker: Blocker,
                        num_negatives: int,
                        rng: np.random.Generator) -> list[EntityPair]:
    """Sample blocking-survivor non-matches as labeled negative pairs.

    Records' ``entity_id`` fields define gold identity: a candidate with
    equal (non-None) ids is a true match and is skipped.  Records
    without ids are skipped too (identity unknown).
    """
    if num_negatives < 0:
        raise ValueError("num_negatives must be >= 0")
    result = blocker.block(left, right)
    negatives = [
        (c.left, c.right)
        for c in result.candidates
        if left[c.left].entity_id is not None
        and right[c.right].entity_id is not None
        and left[c.left].entity_id != right[c.right].entity_id
    ]
    if len(negatives) > num_negatives:
        picked = rng.choice(len(negatives), size=num_negatives, replace=False)
        negatives = [negatives[i] for i in sorted(picked)]
    return [EntityPair(left[i], right[j], 0) for i, j in negatives]
