"""Cluster resolution and cluster-level evaluation.

Pairwise match probabilities (e.g. from
:class:`repro.blocking.pipeline.MatchingPipeline`) become an entity
partition by thresholding and taking connected components — the same
transitive-closure semantics the paper uses to *derive* entity-ID labels
from match annotations (Sec. 4.1.2), now applied to predictions.

Because transitive closure amplifies single false-positive edges into
giant merged clusters, :func:`resolve_clusters` optionally repairs
over-merges: components larger than ``max_cluster_size`` repeatedly drop
their lowest-probability edge until they fall apart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence

import networkx as nx


@dataclass
class Resolution:
    """A predicted partition of the records."""

    clusters: list[set[Hashable]]

    def cluster_of(self) -> dict[Hashable, int]:
        """Record -> cluster index map."""
        return {record: i for i, cluster in enumerate(self.clusters)
                for record in cluster}

    @property
    def num_clusters(self) -> int:
        return len(self.clusters)


def _edge_sort_key(edge: tuple) -> tuple:
    """Deterministic total order on weighted edges: weight, then the
    canonical (sorted, stringified) endpoint pair.

    ``min`` over edges previously tie-broke by networkx adjacency-dict
    iteration order, which depends on node/edge insertion history — the
    same scored graph built in a different arrival order could shed a
    different edge and split an oversized cluster differently.
    """
    u, v, weight = edge
    a, b = sorted((str(u), str(v)))
    return (weight, a, b)


def _split_oversized(graph: nx.Graph, max_size: int) -> None:
    """Drop weakest edges of components exceeding ``max_size`` (in place).

    Deterministic: the weakest edge of a component is unique under
    :func:`_edge_sort_key`, and components are disjoint, so the result
    is independent of node/edge insertion order.
    """
    changed = True
    while changed:
        changed = False
        for component in list(nx.connected_components(graph)):
            if len(component) <= max_size:
                continue
            sub_edges = [
                (u, v, d.get("weight", 1.0))
                for u, v, d in graph.subgraph(component).edges(data=True)
            ]
            if not sub_edges:
                continue
            weakest = min(sub_edges, key=_edge_sort_key)
            graph.remove_edge(weakest[0], weakest[1])
            changed = True


def resolve_clusters(records: Sequence[Hashable],
                     scored_pairs: Iterable[tuple[Hashable, Hashable, float]],
                     threshold: float = 0.5,
                     max_cluster_size: int | None = None) -> Resolution:
    """Partition ``records`` by connected components of confident matches.

    Parameters
    ----------
    records:
        All records to place (unmatched ones become singletons).
    scored_pairs:
        ``(record_a, record_b, probability)`` triples.
    threshold:
        Minimum probability for an edge.
    max_cluster_size:
        If given, over-merged components shed their weakest edges until
        no component exceeds this size (transitivity repair).
    """
    graph = nx.Graph()
    graph.add_nodes_from(records)
    for a, b, prob in scored_pairs:
        if prob >= threshold:
            graph.add_edge(a, b, weight=prob)
    if max_cluster_size is not None:
        if max_cluster_size < 1:
            raise ValueError("max_cluster_size must be >= 1")
        _split_oversized(graph, max_cluster_size)
    clusters = [set(c) for c in nx.connected_components(graph)]
    clusters.sort(key=lambda c: (-len(c), sorted(map(str, c))))
    return Resolution(clusters=clusters)


@dataclass
class ClusteringMetrics:
    """Pairwise cluster-quality metrics against a gold partition."""

    precision: float
    recall: float
    f1: float
    predicted_clusters: int
    gold_clusters: int


def _co_clustered_pairs(assignment: dict[Hashable, int]) -> set[frozenset]:
    by_cluster: dict[int, list[Hashable]] = {}
    for record, cluster in assignment.items():
        by_cluster.setdefault(cluster, []).append(record)
    pairs: set[frozenset] = set()
    for members in by_cluster.values():
        for i, a in enumerate(members):
            for b in members[i + 1:]:
                pairs.add(frozenset((a, b)))
    return pairs


def pairwise_cluster_metrics(predicted: Resolution,
                             gold: dict[Hashable, Hashable]) -> ClusteringMetrics:
    """Pairwise precision/recall/F1 of a predicted partition.

    ``gold`` maps each record to its true entity identifier.  A record
    pair counts as correct when both partitions co-cluster it.
    """
    predicted_assignment = predicted.cluster_of()
    gold_ids = sorted({str(v) for v in gold.values()})
    gold_index = {g: i for i, g in enumerate(gold_ids)}
    gold_assignment = {r: gold_index[str(v)] for r, v in gold.items()}

    predicted_pairs = _co_clustered_pairs(
        {r: c for r, c in predicted_assignment.items() if r in gold}
    )
    gold_pairs = _co_clustered_pairs(gold_assignment)

    true_positive = len(predicted_pairs & gold_pairs)
    precision = true_positive / len(predicted_pairs) if predicted_pairs else 0.0
    recall = true_positive / len(gold_pairs) if gold_pairs else 0.0
    f1 = (2 * precision * recall / (precision + recall)
          if precision + recall else 0.0)
    return ClusteringMetrics(
        precision=precision, recall=recall, f1=f1,
        predicted_clusters=predicted.num_clusters,
        gold_clusters=len(set(gold_assignment.values())),
    )
