"""repro.resolution — from pairwise decisions to entity clusters.

Entity matching produces pairwise match decisions; entity *resolution*
turns them into a partition of the records (each cluster = one
real-world entity).  This package provides:

- :func:`resolve_clusters` — connected-component resolution over
  thresholded match decisions (with optional transitivity repair by
  dropping the weakest edges of over-merged components);
- cluster-level quality metrics: pairwise precision/recall/F1 against a
  gold clustering, and cluster homogeneity/completeness counts.
"""

from repro.resolution.clusters import (
    ClusteringMetrics,
    Resolution,
    pairwise_cluster_metrics,
    resolve_clusters,
)
from repro.resolution.mining import mine_hard_negatives

__all__ = [
    "ClusteringMetrics",
    "Resolution",
    "mine_hard_negatives",
    "pairwise_cluster_metrics",
    "resolve_clusters",
]
