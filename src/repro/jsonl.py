"""Checksummed, torn-tail-tolerant JSON-lines primitives.

One durable-file idiom, three consumers.  The run registry's
``series.jsonl``, the telemetry trace sink, and the streaming
write-ahead log all share the same on-disk shape — one JSON object per
line, appended and flushed as the program runs — and the same failure
mode: a process killed mid-append leaves a *torn tail*, a final partial
line that must be dropped on read, while a bad line anywhere *else* in
the file is genuine corruption and must not be silently skipped by
anything that cares about integrity.

:func:`iter_jsonl` implements that policy once:

- ``tail="tolerate"`` drops an undecodable **final** line (the expected
  debris of a kill) while ``tail="raise"`` treats it like any other bad
  line;
- ``corrupt="raise"`` raises :class:`JsonlError` (with ``path:lineno``
  context) on an undecodable **interior** line, ``corrupt="skip"``
  drops it (the forgiving mode the run registry uses for human-edited
  series files).

Writers that need per-record integrity (the WAL) wrap each payload in a
CRC-32 envelope via :func:`encode_line` / ``checksum=True``: the line
becomes ``{"c": "<crc32 of canonical payload JSON>", "d": <payload>}``,
so a torn or bit-flipped record fails loudly instead of decoding to a
plausible-but-wrong op.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator


class JsonlError(ValueError):
    """An undecodable line, with file/line context for diagnosis."""

    def __init__(self, path, lineno: int, reason: str):
        super().__init__(f"{path}:{lineno}: {reason}")
        self.path = path
        self.lineno = lineno
        self.reason = reason


class ChecksumError(JsonlError):
    """A line whose CRC-32 envelope does not match its payload."""


def _canonical(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def encode_line(payload: dict, checksum: bool = False) -> str:
    """Serialize one payload to a single line (no trailing newline)."""
    if not checksum:
        return json.dumps(payload)
    body = _canonical(payload)
    crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
    return json.dumps({"c": f"{crc:08x}", "d": payload},
                      sort_keys=True, separators=(",", ":"))


def decode_line(raw: str, checksum: bool = False) -> dict:
    """Parse one line back to its payload.

    Raises ``ValueError`` on malformed JSON and (for ``checksum=True``)
    on a missing envelope or CRC mismatch.  Callers with file context
    should catch and re-raise as :class:`JsonlError`.
    """
    payload = json.loads(raw)
    if not checksum:
        return payload
    if not isinstance(payload, dict) or set(payload) != {"c", "d"}:
        raise ValueError("not a checksummed record (expected {'c', 'd'})")
    body = _canonical(payload["d"])
    crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
    if payload["c"] != f"{crc:08x}":
        raise ValueError(
            f"checksum mismatch (recorded {payload['c']}, computed {crc:08x})")
    return payload["d"]


@dataclass
class JsonlLine:
    """One decoded line: its 1-based line number, raw text, and payload."""

    lineno: int
    raw: str
    payload: dict


def iter_jsonl(path: str | Path, *, checksum: bool = False,
               corrupt: str = "raise",
               tail: str = "tolerate") -> Iterator[JsonlLine]:
    """Decode a JSON-lines file under an explicit corruption policy.

    Parameters
    ----------
    checksum:
        Expect every line in the CRC-32 envelope written by
        :func:`encode_line`; a mismatch is treated as corruption.
    corrupt:
        ``"raise"`` (default) raises :class:`JsonlError` on an
        undecodable interior line; ``"skip"`` drops it.
    tail:
        ``"tolerate"`` (default) silently drops an undecodable *final*
        line — the torn tail a killed writer leaves behind; ``"raise"``
        applies the same treatment as interior corruption.

    Blank lines are always skipped and never count as the tail.  A
    missing file raises ``FileNotFoundError`` — absence is the caller's
    policy call, not this reader's.
    """
    if corrupt not in ("raise", "skip"):
        raise ValueError(f"corrupt policy must be 'raise' or 'skip', got {corrupt!r}")
    if tail not in ("tolerate", "raise"):
        raise ValueError(f"tail policy must be 'tolerate' or 'raise', got {tail!r}")
    path = Path(path)
    lines = path.read_text(encoding="utf-8").split("\n")
    numbered = [(i + 1, line) for i, line in enumerate(lines) if line.strip()]
    last_index = numbered[-1][0] if numbered else -1
    for lineno, raw in numbered:
        try:
            payload = decode_line(raw, checksum=checksum)
        except json.JSONDecodeError as exc:
            if lineno == last_index and tail == "tolerate":
                return
            if corrupt == "skip":
                continue
            raise JsonlError(path, lineno, f"not JSON: {exc}") from exc
        except ValueError as exc:
            # Envelope-shape or CRC failures from decode_line(checksum=True).
            if lineno == last_index and tail == "tolerate":
                return
            if corrupt == "skip":
                continue
            raise ChecksumError(path, lineno, str(exc)) from exc
        yield JsonlLine(lineno=lineno, raw=raw, payload=payload)


def read_jsonl_payloads(path: str | Path, *, checksum: bool = False,
                        corrupt: str = "raise",
                        tail: str = "tolerate") -> list[dict]:
    """Eager convenience wrapper: just the payloads, in file order."""
    return [line.payload for line in iter_jsonl(
        path, checksum=checksum, corrupt=corrupt, tail=tail)]
