"""MinHash / LSH blocking for approximate-Jaccard candidate generation.

Each record's token set is summarized by a MinHash signature of
``num_hashes`` universal-hash minima; signatures are cut into ``bands``
bands of equal width, and two records become candidates when they
collide in at least one band.  The usual S-curve applies: pairs with
Jaccard similarity above roughly ``(1/bands)^(1/rows_per_band)`` are
likely to collide.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Sequence

import numpy as np

from repro.blocking.base import Blocker, BlockingResult
from repro.data.schema import EntityRecord
from repro.text.normalize import basic_tokenize
from repro.text.subword import fnv1a

_MERSENNE = (1 << 61) - 1


class MinHashBlocker(Blocker):
    """LSH banding over MinHash signatures of record token sets."""

    def __init__(self, num_hashes: int = 48, bands: int = 12, seed: int = 0):
        if num_hashes % bands != 0:
            raise ValueError(f"num_hashes {num_hashes} not divisible by bands {bands}")
        self.num_hashes = num_hashes
        self.bands = bands
        self.rows = num_hashes // bands
        rng = np.random.default_rng(seed)
        # Universal hashing: h_i(x) = (a_i * x + b_i) mod p.
        self._a = rng.integers(1, _MERSENNE, size=num_hashes, dtype=np.int64)
        self._b = rng.integers(0, _MERSENNE, size=num_hashes, dtype=np.int64)

    def signature(self, tokens: set[str]) -> np.ndarray:
        """MinHash signature (``num_hashes`` minima) of a token set."""
        if not tokens:
            return np.full(self.num_hashes, _MERSENNE, dtype=np.int64)
        values = np.array([fnv1a(t) for t in tokens], dtype=np.int64)
        # (H, T) matrix of hashed values; min over tokens.
        hashed = (self._a[:, None] * values[None, :] + self._b[:, None]) % _MERSENNE
        return hashed.min(axis=1)

    def estimated_jaccard(self, sig_a: np.ndarray, sig_b: np.ndarray) -> float:
        """Fraction of agreeing minima — an unbiased Jaccard estimate."""
        return float((sig_a == sig_b).mean())

    def block(self, left: Sequence[EntityRecord],
              right: Sequence[EntityRecord]) -> BlockingResult:
        left_sigs = [self.signature(set(basic_tokenize(r.text()))) for r in left]
        right_sigs = [self.signature(set(basic_tokenize(r.text()))) for r in right]

        pairs: set[tuple[int, int]] = set()
        for band in range(self.bands):
            lo, hi = band * self.rows, (band + 1) * self.rows
            buckets: dict[bytes, list[int]] = defaultdict(list)
            for j, sig in enumerate(right_sigs):
                buckets[sig[lo:hi].tobytes()].append(j)
            for i, sig in enumerate(left_sigs):
                for j in buckets.get(sig[lo:hi].tobytes(), ()):
                    pairs.add((i, j))
        return self._result(pairs, len(left), len(right))
