"""MinHash / LSH blocking for approximate-Jaccard candidate generation.

Each record's token set is summarized by a MinHash signature of
``num_hashes`` universal-hash minima; signatures are cut into ``bands``
bands of equal width, and two records become candidates when they
collide in at least one band.  The usual S-curve applies: pairs with
Jaccard similarity above roughly ``(1/bands)^(1/rows_per_band)`` are
likely to collide.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Sequence

import numpy as np

from repro.blocking.base import Blocker, BlockingResult
from repro.data.schema import EntityRecord
from repro.text.normalize import basic_tokenize
from repro.text.subword import fnv1a

_MERSENNE = (1 << 61) - 1
_MASK29 = np.uint64((1 << 29) - 1)
_MASK32 = np.uint64((1 << 32) - 1)
_P = np.uint64(_MERSENNE)


def _mulmod61(a: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Exact ``(a * x) mod (2^61 - 1)`` for uint64 operands below the prime.

    The plain product overflows 64 bits (a < 2^61, x < 2^61 gives up to
    122 bits), so both operands are split into 32-bit halves and the
    partial products are folded with the Mersenne identities
    ``2^61 ≡ 1`` and ``2^64 ≡ 8 (mod p)``.  Every intermediate stays
    below 2^63, so uint64 arithmetic never wraps.
    """
    a_hi, a_lo = a >> np.uint64(32), a & _MASK32          # a_hi < 2^29
    x_hi, x_lo = x >> np.uint64(32), x & _MASK32
    low = (a_lo * x_lo) % _P                              # < 2^64 pre-mod
    mid = a_lo * x_hi + a_hi * x_lo                       # < 2^62
    # mid * 2^32 = (mid >> 29) * 2^61 + (mid & mask29) * 2^32
    mid = ((mid >> np.uint64(29)) + ((mid & _MASK29) << np.uint64(32))) % _P
    high = (a_hi * x_hi * np.uint64(8)) % _P              # * 2^64 ≡ * 8
    return (low + mid + high) % _P


class MinHashBlocker(Blocker):
    """LSH banding over MinHash signatures of record token sets."""

    def __init__(self, num_hashes: int = 48, bands: int = 12, seed: int = 0):
        if num_hashes % bands != 0:
            raise ValueError(f"num_hashes {num_hashes} not divisible by bands {bands}")
        self.num_hashes = num_hashes
        self.bands = bands
        self.rows = num_hashes // bands
        rng = np.random.default_rng(seed)
        # Universal hashing: h_i(x) = (a_i * x + b_i) mod p.
        self._a = rng.integers(1, _MERSENNE, size=num_hashes,
                               dtype=np.int64).astype(np.uint64)
        self._b = rng.integers(0, _MERSENNE, size=num_hashes,
                               dtype=np.int64).astype(np.uint64)

    def signature(self, tokens: set[str]) -> np.ndarray:
        """MinHash signature (``num_hashes`` minima) of a token set."""
        if not tokens:
            return np.full(self.num_hashes, _MERSENNE, dtype=np.uint64)
        values = np.array([fnv1a(t) for t in tokens], dtype=np.uint64)
        # (H, T) matrix of hashed values; min over tokens.
        hashed = (_mulmod61(self._a[:, None], values[None, :])
                  + self._b[:, None]) % _P
        return hashed.min(axis=1)

    def estimated_jaccard(self, sig_a: np.ndarray, sig_b: np.ndarray) -> float:
        """Fraction of agreeing minima — an unbiased Jaccard estimate."""
        return float((sig_a == sig_b).mean())

    def block(self, left: Sequence[EntityRecord],
              right: Sequence[EntityRecord]) -> BlockingResult:
        left_sigs = [self.signature(set(basic_tokenize(r.text()))) for r in left]
        right_sigs = [self.signature(set(basic_tokenize(r.text()))) for r in right]

        pairs: set[tuple[int, int]] = set()
        for band in range(self.bands):
            lo, hi = band * self.rows, (band + 1) * self.rows
            buckets: dict[bytes, list[int]] = defaultdict(list)
            for j, sig in enumerate(right_sigs):
                buckets[sig[lo:hi].tobytes()].append(j)
            for i, sig in enumerate(left_sigs):
                for j in buckets.get(sig[lo:hi].tobytes(), ()):
                    pairs.add((i, j))
        return self._result(pairs, len(left), len(right))
