"""Blocking interfaces and quality metrics.

A blocker consumes two record collections and emits candidate pairs
(indices into the collections).  Quality is measured the standard way:

- *pair completeness* (recall): fraction of true matches surviving
  blocking;
- *reduction ratio*: fraction of the full cross product pruned away.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.data.schema import EntityRecord


@dataclass(frozen=True)
class CandidatePair:
    """Indices of a candidate pair: left collection × right collection."""

    left: int
    right: int


@dataclass
class BlockingResult:
    """Candidate set plus the sizes needed for the quality metrics."""

    candidates: list[CandidatePair]
    num_left: int
    num_right: int

    @property
    def comparison_count(self) -> int:
        return len(self.candidates)

    @property
    def full_cross_product(self) -> int:
        return self.num_left * self.num_right

    def candidate_set(self) -> set[tuple[int, int]]:
        return {(c.left, c.right) for c in self.candidates}


class Blocker:
    """Base class: subclasses implement :meth:`block`."""

    def block(self, left: Sequence[EntityRecord],
              right: Sequence[EntityRecord]) -> BlockingResult:
        raise NotImplementedError

    @staticmethod
    def _result(pairs: Iterable[tuple[int, int]], num_left: int,
                num_right: int) -> BlockingResult:
        unique = sorted(set(pairs))
        return BlockingResult(
            candidates=[CandidatePair(i, j) for i, j in unique],
            num_left=num_left,
            num_right=num_right,
        )


def evaluate_blocking(result: BlockingResult,
                      gold_matches: Iterable[tuple[int, int]]) -> dict:
    """Pair completeness and reduction ratio of a blocking result.

    ``gold_matches`` are (left_index, right_index) pairs of true matches.
    """
    gold = set(gold_matches)
    candidates = result.candidate_set()
    found = len(gold & candidates)
    completeness = found / len(gold) if gold else 1.0
    total = result.full_cross_product
    reduction = 1.0 - result.comparison_count / total if total else 0.0
    return {
        "pair_completeness": completeness,
        "reduction_ratio": reduction,
        "candidates": result.comparison_count,
        "gold_matches": len(gold),
        "matches_found": found,
    }
