"""Token-overlap blocking with an inverted index.

Two records become a candidate pair when they share at least
``min_common`` (sufficiently rare) tokens.  Tokens appearing in more
than ``max_token_frequency`` of one side's records are treated as stop
words — shared filler like "retail" would otherwise pull in nearly the
full cross product.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Sequence

from repro.blocking.base import Blocker, BlockingResult
from repro.data.schema import EntityRecord
from repro.text.normalize import basic_tokenize


class TokenBlocker(Blocker):
    """Inverted-index blocking on shared informative tokens."""

    def __init__(self, min_common: int = 1, max_token_frequency: float = 0.2,
                 min_token_length: int = 2):
        if min_common < 1:
            raise ValueError("min_common must be >= 1")
        if not 0.0 < max_token_frequency <= 1.0:
            raise ValueError("max_token_frequency must be in (0, 1]")
        self.min_common = min_common
        self.max_token_frequency = max_token_frequency
        self.min_token_length = min_token_length

    def _tokens(self, record: EntityRecord) -> set[str]:
        return {t for t in basic_tokenize(record.text())
                if len(t) >= self.min_token_length}

    def block(self, left: Sequence[EntityRecord],
              right: Sequence[EntityRecord]) -> BlockingResult:
        left_tokens = [self._tokens(r) for r in left]
        right_tokens = [self._tokens(r) for r in right]

        # Stop words: tokens too frequent on either side.
        def frequent(token_sets: list[set[str]]) -> set[str]:
            if not token_sets:
                return set()
            counts = Counter(t for tokens in token_sets for t in tokens)
            # Never filter tokens that appear only once: on tiny
            # collections the relative limit would otherwise stop
            # everything.
            limit = max(self.max_token_frequency * len(token_sets), 1.0)
            return {t for t, c in counts.items() if c > limit}

        stop = frequent(left_tokens) | frequent(right_tokens)

        index: dict[str, list[int]] = defaultdict(list)
        for j, tokens in enumerate(right_tokens):
            for token in tokens - stop:
                index[token].append(j)

        overlap: dict[tuple[int, int], int] = defaultdict(int)
        for i, tokens in enumerate(left_tokens):
            for token in tokens - stop:
                for j in index.get(token, ()):
                    overlap[(i, j)] += 1

        pairs = [pair for pair, count in overlap.items()
                 if count >= self.min_common]
        return self._result(pairs, len(left), len(right))
