"""Sorted-neighborhood blocking.

Both collections are merged, sorted by a blocking key (default: the
record's alphabetically smallest rare-ish token sequence — here simply
the normalized text), and a window of size ``window`` slides over the
sorted order; cross-collection pairs inside a window become candidates.
Multiple passes with different key functions can be combined by a
caller union-ing the results.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.blocking.base import Blocker, BlockingResult
from repro.data.schema import EntityRecord
from repro.text.normalize import normalize_text


def default_key(record: EntityRecord) -> str:
    """Default blocking key: the normalized description text."""
    return normalize_text(record.text())


class SortedNeighborhoodBlocker(Blocker):
    """Classic sorted-neighborhood method over the merged collections."""

    def __init__(self, window: int = 5,
                 key: Callable[[EntityRecord], str] = default_key):
        if window < 2:
            raise ValueError("window must be >= 2")
        self.window = window
        self.key = key

    def block(self, left: Sequence[EntityRecord],
              right: Sequence[EntityRecord]) -> BlockingResult:
        tagged = (
            [(self.key(r), 0, i) for i, r in enumerate(left)]
            + [(self.key(r), 1, j) for j, r in enumerate(right)]
        )
        tagged.sort()

        pairs: set[tuple[int, int]] = set()
        for pos, (_, side, idx) in enumerate(tagged):
            for other_pos in range(pos + 1, min(pos + self.window, len(tagged))):
                _, other_side, other_idx = tagged[other_pos]
                if side == other_side:
                    continue
                if side == 0:
                    pairs.add((idx, other_idx))
                else:
                    pairs.add((other_idx, idx))
        return self._result(pairs, len(left), len(right))
