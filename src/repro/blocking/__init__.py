"""repro.blocking — candidate-pair generation for entity matching.

The paper (like DITTO and JointBERT) evaluates on pre-paired candidate
sets; a deployable EM system also needs the *blocking* stage that
produces those candidates from two raw record collections.  This package
provides the three classic blocking families plus quality metrics and an
end-to-end block→match pipeline:

- :class:`TokenBlocker` — inverted-index token-overlap blocking;
- :class:`MinHashBlocker` — MinHash/LSH approximate-Jaccard blocking;
- :class:`SortedNeighborhoodBlocker` — sorted-neighborhood windowing;
- :func:`evaluate_blocking` — pair completeness (recall) and reduction
  ratio against gold matches;
- :class:`MatchingPipeline` — blocking + a trained
  :class:`~repro.models.base.EMModel` for end-to-end deduplication.
"""

from repro.blocking.base import (
    BlockingResult,
    CandidatePair,
    evaluate_blocking,
)
from repro.blocking.minhash import MinHashBlocker
from repro.blocking.pipeline import MatchDecision, MatchingPipeline
from repro.blocking.sorted_neighborhood import SortedNeighborhoodBlocker
from repro.blocking.token import TokenBlocker

__all__ = [
    "BlockingResult",
    "CandidatePair",
    "MatchDecision",
    "MatchingPipeline",
    "MinHashBlocker",
    "SortedNeighborhoodBlocker",
    "TokenBlocker",
    "evaluate_blocking",
]
