"""End-to-end block -> match pipeline.

Combines any :class:`~repro.blocking.base.Blocker` with a trained
:class:`~repro.models.base.EMModel`: blocking prunes the cross product,
the matcher scores the surviving candidates, and the pipeline returns
the predicted match pairs with probabilities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.blocking.base import Blocker
from repro.data.loader import PairEncoder, collate
from repro.data.schema import EntityPair, EntityRecord
from repro.models.base import EMModel


@dataclass(frozen=True)
class MatchDecision:
    """One scored candidate pair."""

    left: int
    right: int
    probability: float

    @property
    def is_match(self) -> bool:
        return self.probability >= 0.5


class MatchingPipeline:
    """Blocking + neural matching over two record collections."""

    def __init__(self, blocker: Blocker, model: EMModel, encoder: PairEncoder,
                 batch_size: int = 32, threshold: float = 0.5):
        if not 0.0 < threshold < 1.0:
            raise ValueError("threshold must be in (0, 1)")
        self.blocker = blocker
        self.model = model
        self.encoder = encoder
        self.batch_size = batch_size
        self.threshold = threshold

    def match(self, left: Sequence[EntityRecord],
              right: Sequence[EntityRecord]) -> list[MatchDecision]:
        """Score every blocking candidate; return decisions sorted by prob."""
        result = self.blocker.block(left, right)
        decisions: list[MatchDecision] = []
        candidates = result.candidates
        for start in range(0, len(candidates), self.batch_size):
            chunk = candidates[start:start + self.batch_size]
            encoded = [
                self.encoder.encode(EntityPair(left[c.left], right[c.right], 0))
                for c in chunk
            ]
            probs = self.model.predict(collate(encoded))["em_prob"]
            decisions.extend(
                MatchDecision(c.left, c.right, float(p))
                for c, p in zip(chunk, probs)
            )
        decisions.sort(key=lambda d: d.probability, reverse=True)
        return decisions

    def matches(self, left: Sequence[EntityRecord],
                right: Sequence[EntityRecord]) -> list[MatchDecision]:
        """Only the decisions at or above the match threshold."""
        return [d for d in self.match(left, right)
                if d.probability >= self.threshold]
