"""End-to-end block -> match pipeline.

Combines any :class:`~repro.blocking.base.Blocker` with a trained
:class:`~repro.models.base.EMModel`: blocking prunes the cross product,
the matcher scores the surviving candidates through the shared
:class:`~repro.engine.core.InferenceEngine` (length-bucketed batches,
record-level memoization — blocking output repeats each record across
many candidate pairs, so the memo hit rate is high), and the pipeline
returns the predicted match pairs with probabilities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.blocking.base import Blocker
from repro.data.loader import PairEncoder
from repro.data.schema import EntityPair, EntityRecord
from repro.engine import EngineConfig, EngineStats, InferenceEngine
from repro.models.base import EMModel
from repro import obs


@dataclass(frozen=True)
class MatchDecision:
    """One scored candidate pair."""

    left: int
    right: int
    probability: float
    threshold: float = 0.5

    @property
    def is_match(self) -> bool:
        return self.probability >= self.threshold


class MatchingPipeline:
    """Blocking + neural matching over two record collections."""

    def __init__(self, blocker: Blocker, model: EMModel, encoder: PairEncoder,
                 batch_size: int = 32, threshold: float = 0.5,
                 engine_config: EngineConfig | None = None):
        if not 0.0 < threshold < 1.0:
            raise ValueError("threshold must be in (0, 1)")
        self.blocker = blocker
        self.model = model
        self.encoder = encoder
        self.batch_size = batch_size
        self.threshold = threshold
        if engine_config is None:
            engine_config = EngineConfig(batch_size=batch_size,
                                         threshold=threshold)
        self.engine = InferenceEngine(model, encoder, engine_config)

    @property
    def stats(self) -> EngineStats:
        """Scoring counters of the underlying inference engine."""
        return self.engine.stats

    def match(self, left: Sequence[EntityRecord],
              right: Sequence[EntityRecord]) -> list[MatchDecision]:
        """Score every blocking candidate; return decisions sorted by prob."""
        blocker_name = type(self.blocker).__name__
        with obs.span("pipeline.match", blocker=blocker_name,
                      left=len(left), right=len(right)):
            with obs.span("pipeline.block", blocker=blocker_name) as block_span:
                result = self.blocker.block(left, right)
                block_span.set("candidates", result.comparison_count)
            if obs.enabled():
                obs.inc("blocking.candidates", result.comparison_count)
                obs.inc(f"blocking.candidates.{blocker_name}",
                        result.comparison_count)
                obs.observe("blocking.candidates_per_call",
                            result.comparison_count)
            candidates = result.candidates
            pairs = [EntityPair(left[c.left], right[c.right], 0)
                     for c in candidates]
            probs = self.engine.predict_proba(pairs)
            decisions = [
                MatchDecision(c.left, c.right, float(p), threshold=self.threshold)
                for c, p in zip(candidates, probs)
            ]
            decisions.sort(key=lambda d: d.probability, reverse=True)
            return decisions

    def matches(self, left: Sequence[EntityRecord],
                right: Sequence[EntityRecord]) -> list[MatchDecision]:
        """Only the decisions at or above the match threshold."""
        return [d for d in self.match(left, right) if d.is_match]
