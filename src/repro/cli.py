"""Command-line interface: ``python -m repro <command>``.

Commands
--------
- ``datasets``                 list the benchmark configurations (Table 1)
- ``run --dataset D --model M``  train + evaluate one configuration
- ``resume --dataset D --model M``  continue a crashed run from its
                               newest valid checkpoint (byte-identical
                               to an uninterrupted run)
- ``table N``                  regenerate one of the paper's tables (1-7)
- ``figure N``                 regenerate Figure 5 or 6
- ``casestudy``                print the Section 4.7 case-study pair
- ``profile-engine``           time the batched inference engine vs. the
                               naive scoring loop on a blocking workload
- ``profile-cascade``          time the staged cheap->full cascade against
                               the full engine alone on the same workload
- ``serve``                    run the matching daemon: newline-delimited
                               JSON over TCP with micro-batching,
                               backpressure, and hot-swappable weights
                               (see docs/operations.md for the runbook)
- ``stream``                   durable streaming resolution: journal a
                               synthetic WDC offer stream through the
                               WAL-backed incremental LSH index, score
                               new candidates, and cluster incrementally;
                               re-running with the same ``--dir`` recovers
                               from the journal (kill-at-any-point safe)
- ``explain``                  attention-faithfulness audit: token-masking
                               faithfulness of AoA gamma vs. a random
                               baseline, per-head received-attention
                               drift pre/post fine-tuning, and LIME/AoA
                               rank agreement; records a ``kind="explain"``
                               run so ``repro runs check`` can gate the
                               interpretability metrics
- ``selfcheck``                numerical certification: gradcheck sweep,
                               runtime invariants, golden digests, parity
- ``trace FILE``               render a JSON-lines trace (written via
                               ``--trace-file`` or ``REPRO_TRACE=<path>``)
                               as a span tree plus the metrics table;
                               ``--merge`` reassembles the pid-suffixed
                               per-process files of a traced serve run
                               into one cross-process tree, and
                               ``--trace-id ID`` renders one request's
                               full queue→batch→shard→forward journey
                               with per-stage latency attribution
- ``top``                      poll a running daemon's windowed live
                               telemetry (p50/p99 latency, throughput,
                               rejection rate, per-worker status)
- ``slo check REF --spec S``   audit a recorded serve run against a
                               declarative SLO spec; non-zero exit on
                               breach (CI gate)
- ``runs list|show|diff|check|prune``  the persistent run registry:
                               list recorded runs, inspect one (manifest,
                               training curves, probe channels), diff two,
                               gate a candidate against a baseline
                               (non-zero exit on regression), prune old runs

``run``, ``resume``, and ``profile-engine`` accept ``--trace`` (print a
span tree + metrics summary after the command) and ``--trace-file PATH``
(stream the trace to ``PATH`` as JSON lines); ``REPRO_TRACE=1`` in the
environment enables the same telemetry for any command.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_datasets(args) -> int:
    from repro.experiments.tables import table1

    print(table1().rendered)
    return 0


def _cmd_run(args, resume: bool = False) -> int:
    from dataclasses import replace

    from repro.experiments.config import PROFILES, spec_for, training_schedule
    from repro.experiments.runner import run_experiment

    profile = PROFILES[args.profile]
    spec = spec_for(args.dataset, args.size, args.model, args.seed, profile)
    if getattr(args, "epochs", 0):
        # Changes the spec digest, so resume must pass the same value.
        # Patience comes from the dataset schedule, not the (possibly
        # tighter) profile cap the override is replacing.
        schedule = training_schedule(args.dataset, args.size)
        spec = replace(spec, epochs=args.epochs,
                       patience=min(schedule["patience"], args.epochs))
    metrics = run_experiment(
        spec, use_cache=not args.no_cache,
        checkpoint=resume or getattr(args, "checkpoint", False),
        resume=resume, max_retries=getattr(args, "retries", 0),
        record_run=not getattr(args, "no_record", False),
        run_name=getattr(args, "name", ""),
        probe_every=getattr(args, "probe_every", 0),
    )
    print(f"{args.model} on {args.dataset}/{args.size} (seed {args.seed})")
    print(f"  EM F1        = {100 * metrics['em_f1']:.2f}")
    print(f"  precision    = {100 * metrics['em_precision']:.2f}")
    print(f"  recall       = {100 * metrics['em_recall']:.2f}")
    if "acc1" in metrics:
        print(f"  ID acc1/acc2 = {100 * metrics['acc1']:.2f} / {100 * metrics['acc2']:.2f}")
        print(f"  ID micro-F1  = {100 * metrics['id_micro_f1']:.2f}")
    print(f"  epochs run   = {metrics['epochs_run']}"
          f"  ({metrics['train_seconds']:.1f}s)")
    if metrics.get("nonfinite_skipped") or metrics.get("quarantined"):
        print(f"  fault tolerance: {metrics.get('nonfinite_skipped', 0)} "
              f"non-finite batches skipped, {metrics.get('quarantined', 0)} "
              f"pairs quarantined")
    return 0


def _cmd_resume(args) -> int:
    """Continue a crashed ``run`` from its newest valid checkpoint."""
    return _cmd_run(args, resume=True)


def _cmd_table(args) -> int:
    from repro.experiments import tables

    fn = getattr(tables, f"table{args.number}", None)
    if fn is None:
        print(f"no such table: {args.number}", file=sys.stderr)
        return 2
    result = fn(progress=True) if args.number != 1 else fn()
    print(result.rendered)
    if args.save:
        print(f"saved to {result.save(args.save)}")
    return 0


def _cmd_figure(args) -> int:
    from repro.experiments import figures

    fn = getattr(figures, f"figure{args.number}", None)
    if fn is None:
        print(f"no such figure: {args.number}", file=sys.stderr)
        return 2
    result = fn()
    print(result.rendered)
    if args.save:
        print(f"saved to {result.save(args.save)}")
    return 0


def _cmd_profile(args) -> int:
    from repro.data.analysis import profile_dataset
    from repro.data.registry import load_dataset

    dataset = load_dataset(args.dataset, size=args.size)
    profile = profile_dataset(dataset.train)
    print(f"profile of {args.dataset}/{args.size} (train split)")
    print(f"  pairs                     = {profile['num_pairs']}")
    print(f"  match token-jaccard mean  = {profile['match_jaccard_mean']:.3f}")
    print(f"  nonmatch token-jaccard    = {profile['nonmatch_jaccard_mean']:.3f}")
    print(f"  separation                = {profile['jaccard_separation']:.3f}")
    print(f"  source vocabulary overlap = {profile['source_vocabulary_overlap']:.3f}")
    print("  attribute fill rates:")
    for name, rate in sorted(profile["fill_rates"].items()):
        print(f"    {name:<20} {rate:.2f}")
    return 0


def _cmd_profile_engine(args) -> int:
    from repro.engine.profile import profile_engine_workload, render_profile

    report = profile_engine_workload(
        dataset=args.dataset, size=args.size, model_name=args.model,
        batch_size=args.batch_size, max_pairs=args.max_pairs,
        repeats=args.repeats,
    )
    print(render_profile(report))
    return 0


def _cmd_profile_cascade(args) -> int:
    from repro.engine.profile import (
        profile_cascade_workload,
        render_cascade_profile,
    )

    report = profile_cascade_workload(
        dataset=args.dataset, size=args.size, cheap_model=args.cheap,
        full_model=args.full, batch_size=args.batch_size,
        max_pairs=args.max_pairs, repeats=args.repeats,
        low=args.low, high=args.high,
    )
    print(render_cascade_profile(report))
    return 0


def _cmd_serve(args) -> int:
    """Run the matching daemon until interrupted (or a shutdown op)."""
    import contextlib
    import time

    from repro.serve import MatchServer, ServeConfig, ServerHandle, SloSpec
    from repro.serve.scorer import factory_from_spec

    slo = None
    if args.slo:
        try:
            slo = SloSpec.load(args.slo)
        except (OSError, ValueError, TypeError) as exc:
            print(f"bad SLO spec {args.slo}: {exc}", file=sys.stderr)
            return 2
    factory = factory_from_spec(
        args.dataset, args.size, args.model, seed=args.seed,
        batch_size=args.batch_size, threshold=args.threshold,
        weights_ref=args.weights, runs_root=args.runs_root or None)
    config = ServeConfig(
        host=args.host, port=args.port, max_batch=args.max_batch,
        max_delay=args.max_delay_ms / 1000.0, max_queue=args.max_queue,
        shards=args.shards, runs_root=args.runs_root or None,
        window_s=args.window_s, slo=slo)
    server = MatchServer(factory, config)

    # --record registers the serve session as a kind="serve" run: live
    # slo_breach events stream into its series while it runs, and the
    # final lifetime metrics (the shape `repro slo check` audits) seal
    # the manifest at shutdown.  Shard workers fork *before* recording
    # starts and are covered by the runs fork hook either way.
    writer = None
    if args.record:
        from repro.runs import RunStore, recording

        writer = RunStore(args.runs_root or None).create(
            name=args.name or f"serve-{args.model}-{args.dataset}",
            kind="serve",
            config={"dataset": args.dataset, "size": args.size,
                    "model": args.model, "shards": args.shards,
                    "max_batch": args.max_batch,
                    "max_delay_ms": args.max_delay_ms,
                    "max_queue": args.max_queue, "window_s": args.window_s,
                    "slo": slo.to_dict() if slo else None},
            argv=list(sys.argv), dataset=args.dataset, model=args.model,
            seed=args.seed)
    scope = recording(writer) if writer is not None else contextlib.nullcontext()
    with scope:
        with ServerHandle(server) as (host, port):
            print(f"serving {args.model} ({args.dataset}/{args.size}) "
                  f"on {host}:{port} — shards={args.shards} "
                  f"max_batch={args.max_batch} "
                  f"max_delay={args.max_delay_ms}ms"
                  + (f" slo={args.slo}" if slo else ""),
                  flush=True)
            try:
                while server.running:
                    time.sleep(0.5)
            except KeyboardInterrupt:
                pass
        if writer is not None:
            writer.finish(**server.final_metrics())
            print(f"recorded serve run {writer.id}", flush=True)
    return 0


def _cmd_stream(args) -> int:
    """Durable streaming resolution over a synthetic WDC offer stream."""
    import time

    from repro.data.generators.wdc import wdc_offer_stream
    from repro.runs import RunStore, recording
    from repro.stream import JaccardScorer, StreamConfig, StreamPipeline

    if args.scorer == "jaccard":
        scorer = JaccardScorer(threshold=args.threshold)
    else:
        from repro.serve.scorer import factory_from_spec

        dataset = args.dataset or f"wdc_{args.category}"
        scorer = factory_from_spec(
            dataset, args.size, args.scorer, seed=args.seed,
            batch_size=args.batch_size, threshold=args.threshold,
            weights_ref=args.weights, runs_root=None)().engine
    config = StreamConfig(
        threshold=args.threshold, score_batch=args.score_batch,
        sync_every=args.sync_every, snapshot_every=args.snapshot_every,
        num_hashes=args.num_hashes, bands=args.bands, seed=args.seed)

    writer = None
    if not args.no_record:
        writer = RunStore().create(
            name=args.name or f"stream-{args.category}-{args.offers}",
            kind="stream",
            config={"category": args.category, "offers": args.offers,
                    "scorer": args.scorer, "threshold": args.threshold,
                    "score_batch": args.score_batch,
                    "snapshot_every": args.snapshot_every,
                    "num_hashes": args.num_hashes, "bands": args.bands,
                    "seed": args.seed},
            argv=list(sys.argv), dataset=f"wdc_{args.category}",
            model=args.scorer, seed=args.seed)

    def drive() -> int:
        pipeline = StreamPipeline(args.dir, scorer, config)
        if pipeline.recovered:
            print(f"recovered from journal: {len(pipeline.records)} records, "
                  f"{pipeline.counters['scored']} scored pairs, "
                  f"snapshot seq {pipeline.wal.snapshot_seq}")
        start = time.perf_counter()
        pipeline.extend(wdc_offer_stream(
            args.category, args.offers, seed=args.seed,
            offers_per_product=args.offers_per_product))
        pipeline.flush()
        pipeline.snapshot()
        wall = time.perf_counter() - start
        stats = pipeline.stats()
        resolution = pipeline.resolution()
        rate = stats["upserts"] / wall if wall > 0 else 0.0
        print(f"streamed {args.offers} {args.category} offers in {wall:.2f}s "
              f"({rate:.0f} records/s)")
        print(f"  records      = {stats['records']}")
        print(f"  candidates   = {stats['candidates']} (exactly-once)")
        print(f"  scored       = {stats['scored']} "
              f"in {stats['score_calls']} batches")
        print(f"  clusters     = {stats['clusters']}"
              f"  largest = {len(resolution.clusters[0]) if resolution.clusters else 0}")
        print(f"  wal          = {stats['wal']['appended']} ops, "
              f"{stats['wal']['syncs']} syncs, "
              f"{stats['wal']['snapshots']} snapshots")
        if writer is not None:
            writer.finish(records=stats["records"],
                          candidates=stats["candidates"],
                          scored=stats["scored"],
                          clusters=stats["clusters"],
                          records_per_s=round(rate, 2),
                          wall_seconds=round(wall, 3))
        pipeline.close()
        return 0

    if writer is not None:
        with recording(writer):
            return drive()
    return drive()


def _cmd_explain(args) -> int:
    """Run the attention-faithfulness audit and (optionally) record it."""
    from pathlib import Path

    from repro.explain.audit import render_audit, run_explain_audit
    from repro.runs import RunStore, recording

    writer = None
    if not args.no_record:
        writer = RunStore(args.runs_root or None).create(
            name=args.name or f"explain-{args.model}-{args.dataset}-{args.size}",
            kind="explain",
            config={"dataset": args.dataset, "size": args.size,
                    "model": args.model, "seed": args.seed,
                    "pairs": args.pairs, "fractions": list(args.fraction),
                    "lime_samples": args.lime_samples},
            argv=list(sys.argv), dataset=args.dataset, model=args.model,
            seed=args.seed)

    def drive() -> int:
        report = run_explain_audit(
            dataset=args.dataset, size=args.size, model=args.model,
            seed=args.seed, epochs=args.epochs or None, max_pairs=args.pairs,
            fractions=tuple(args.fraction) or (0.1, 0.25, 0.5),
            random_draws=args.random_draws, lime_pairs=args.lime_pairs,
            lime_samples=args.lime_samples, topk=args.topk,
            drift_pairs=args.drift_pairs)
        rendered = render_audit(report)
        print(rendered)
        if args.save:
            out = Path(args.save)
            out.parent.mkdir(parents=True, exist_ok=True)
            out.write_text(rendered + "\n", encoding="utf-8")
            print(f"saved to {out}")
        if writer is not None:
            writer.finish(**report["metrics"])
        if not report["faithfulness"].faithful:
            print("WARNING: AoA top-gamma masking hurt less than random "
                  "masking — the model's explanations are not faithful",
                  file=sys.stderr)
            return 1
        return 0

    if writer is not None:
        with recording(writer):
            return drive()
    return drive()


def _cmd_selfcheck(args) -> int:
    from repro.verify.selfcheck import run_selfcheck

    return run_selfcheck(quick=args.quick, seed=args.seed)


def _cmd_trace(args) -> int:
    """Render a JSON-lines trace file: span tree + metrics table.

    With ``--merge`` the file (or directory) is treated as one process's
    slice of a multi-process trace: its pid-suffixed siblings are merged
    into a single causally ordered cross-process tree, optionally
    filtered to one request's journey with ``--trace-id``.
    """
    if args.merge:
        from repro.obs import merge_traces, render_merged

        try:
            merged = merge_traces(args.file)
        except FileNotFoundError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        print(render_merged(merged, trace_id=args.trace_id or None))
        return 0
    if args.trace_id:
        print("--trace-id requires --merge", file=sys.stderr)
        return 2
    from repro.obs import read_jsonl, render_metrics, tree_summary

    try:
        records, metrics = read_jsonl(args.file)
    except FileNotFoundError:
        print(f"no such trace file: {args.file}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"malformed trace: {exc}", file=sys.stderr)
        return 2
    print(tree_summary(records))
    if not args.no_metrics:
        print()
        if metrics is not None:
            print(render_metrics(metrics))
        else:
            print("(no metrics captured in trace)")
    return 0


def _cmd_top(args) -> int:
    """Poll the daemon's ``metrics`` op and render a live telemetry view."""
    import time

    from repro.serve import ServeClient, render_top

    try:
        client = ServeClient(args.host, args.port, timeout=args.timeout)
    except OSError as exc:
        print(f"cannot connect to {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 2
    frames = 0
    try:
        while True:
            try:
                payload = client.metrics()
            except (ConnectionError, OSError) as exc:
                print(f"connection lost: {exc}", file=sys.stderr)
                return 1
            if frames and args.clear and sys.stdout.isatty():
                print("\x1b[2J\x1b[H", end="")
            print(render_top(payload), flush=True)
            frames += 1
            if args.count and frames >= args.count:
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
    finally:
        client.close()


def _cmd_slo_check(args) -> int:
    """Post-hoc SLO gate: non-zero exit when a recorded serve run breached."""
    from repro.serve import SloSpec, check_run

    try:
        spec = SloSpec.load(args.spec)
    except (OSError, ValueError, TypeError) as exc:
        print(f"bad SLO spec {args.spec}: {exc}", file=sys.stderr)
        return 2
    store = _runs_store(args)
    try:
        record = store.resolve(args.ref)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    violations = check_run(record.manifest, spec, record.events())
    run_id = record.manifest.get("id", args.ref)
    if violations:
        print(f"SLO BREACH: {run_id} vs {args.spec}")
        for violation in violations:
            print(f"  - {violation}")
        return 1
    metrics = record.manifest.get("metrics", {})
    print(f"ok: {run_id} within SLO {args.spec} "
          f"(p99 {metrics.get('latency_p99_ms', float('nan')):.2f}ms, "
          f"reject-rate {metrics.get('rejection_rate', float('nan')):.4f})")
    return 0


def _runs_store(args):
    from repro.runs import RunStore

    return RunStore(args.root or None)


def _cmd_runs_list(args) -> int:
    from repro.runs import render_list

    print(render_list(_runs_store(args).list(kind=args.kind or None)))
    return 0


def _cmd_runs_show(args) -> int:
    from repro.runs import render_show

    store = _runs_store(args)
    try:
        record = store.resolve(args.ref)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    print(render_show(record, channels=tuple(args.channel)))
    return 0


def _cmd_runs_diff(args) -> int:
    from repro.runs import diff_runs

    store = _runs_store(args)
    try:
        a, b = store.resolve(args.a), store.resolve(args.b)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    channels = tuple(args.channel) or ("loss", "valid_f1")
    print(diff_runs(a, b, channels=channels))
    return 0


def _cmd_runs_check(args) -> int:
    """The regression watchdog: non-zero exit when the candidate regressed."""
    from repro.runs import Tolerance, check_regression, load_baseline

    store = _runs_store(args)
    try:
        baseline = load_baseline(args.baseline, store)
        candidate = store.resolve(args.ref).manifest
    except (KeyError, ValueError) as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    tol = Tolerance(f1_drop=args.f1_tol, throughput_drop=args.throughput_tol,
                    health=not args.no_health,
                    faithfulness_drop=args.faithfulness_tol,
                    agreement_drop=args.agreement_tol)
    violations = check_regression(baseline, candidate, tol)
    base_name = baseline.get("id") or args.baseline
    if violations:
        print(f"REGRESSION: {candidate.get('id', '?')} vs {base_name}")
        for violation in violations:
            print(f"  - {violation}")
        return 1
    print(f"ok: {candidate.get('id', '?')} within tolerance of {base_name} "
          f"(em_f1 {candidate.get('metrics', {}).get('em_f1', float('nan')):.4f})")
    return 0


def _cmd_runs_prune(args) -> int:
    removed = _runs_store(args).prune(args.keep)
    print(f"removed {len(removed)} run(s)"
          + (f": {', '.join(removed)}" if removed else ""))
    return 0


def _cmd_casestudy(args) -> int:
    from repro.experiments.casestudy import case_study_pair

    pair = case_study_pair()
    print("entity 1:", pair.record1.text())
    print("entity 2:", pair.record2.text())
    print("ground truth: non-match")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="EMBA (EDBT 2024) reproduction command line",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list benchmark datasets (Table 1)"
                   ).set_defaults(fn=_cmd_datasets)

    def add_trace_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--trace", action="store_true",
                       help="enable telemetry; print span tree + metrics at exit")
        p.add_argument("--trace-file", default="",
                       help="stream the trace to this file as JSON lines "
                            "(implies --trace; read back with `repro trace`)")

    def add_root(p: argparse.ArgumentParser) -> None:
        p.add_argument("--root", default="",
                       help="run store root (default: REPRO_RUNS_DIR or "
                            "<cache>/runs)")

    def add_record_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--epochs", type=int, default=0,
                       help="override the profile's training epochs "
                            "(0 = profile default)")
        p.add_argument("--name", default="",
                       help="name for the recorded run (default: "
                            "model-dataset-size-sSEED)")
        p.add_argument("--probe-every", type=int, default=10,
                       help="sample model-introspection probes every N steps "
                            "(0 disables)")
        p.add_argument("--no-record", action="store_true",
                       help="do not register this run in the run store")

    run = sub.add_parser("run", help="train and evaluate one configuration")
    run.add_argument("--dataset", required=True)
    run.add_argument("--model", default="emba")
    run.add_argument("--size", default="default")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--profile", default="quick")
    run.add_argument("--no-cache", action="store_true")
    run.add_argument("--checkpoint", action="store_true",
                     help="persist full training state every epoch")
    run.add_argument("--retries", type=int, default=0,
                     help="resume attempts after transient training faults")
    add_record_flags(run)
    add_trace_flags(run)
    run.set_defaults(fn=_cmd_run)

    resume = sub.add_parser(
        "resume",
        help="continue a crashed run from its newest valid checkpoint",
    )
    resume.add_argument("--dataset", required=True)
    resume.add_argument("--model", default="emba")
    resume.add_argument("--size", default="default")
    resume.add_argument("--seed", type=int, default=0)
    resume.add_argument("--profile", default="quick")
    resume.add_argument("--no-cache", action="store_true")
    resume.add_argument("--retries", type=int, default=2,
                        help="resume attempts after transient training faults")
    add_record_flags(resume)
    add_trace_flags(resume)
    resume.set_defaults(fn=_cmd_resume)

    table = sub.add_parser("table", help="regenerate a paper table")
    table.add_argument("number", type=int, choices=range(1, 8))
    table.add_argument("--save", default="")
    table.set_defaults(fn=_cmd_table)

    figure = sub.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument("number", type=int, choices=(5, 6))
    figure.add_argument("--save", default="")
    figure.set_defaults(fn=_cmd_figure)

    profile = sub.add_parser("profile", help="profile a dataset's pairs")
    profile.add_argument("--dataset", required=True)
    profile.add_argument("--size", default="default")
    profile.set_defaults(fn=_cmd_profile)

    engine = sub.add_parser(
        "profile-engine",
        help="time batched inference (bucketing + memoization) vs. naive scoring",
    )
    engine.add_argument("--dataset", default="wdc_computers")
    engine.add_argument("--size", default="small")
    engine.add_argument("--model", default="emba_ft")
    engine.add_argument("--batch-size", type=int, default=32)
    engine.add_argument("--max-pairs", type=int, default=400)
    engine.add_argument("--repeats", type=int, default=3)
    add_trace_flags(engine)
    engine.set_defaults(fn=_cmd_profile_engine)

    cascade = sub.add_parser(
        "profile-cascade",
        help="time the staged cheap->full cascade vs. the full engine alone",
    )
    cascade.add_argument("--dataset", default="wdc_computers")
    cascade.add_argument("--size", default="small")
    cascade.add_argument("--cheap", default="emba_dual_sb",
                         help="cheap-stage model (late-interaction)")
    cascade.add_argument("--full", default="emba_sb",
                         help="full-stage cross-encoder model")
    cascade.add_argument("--batch-size", type=int, default=32)
    cascade.add_argument("--max-pairs", type=int, default=400)
    cascade.add_argument("--repeats", type=int, default=3)
    cascade.add_argument("--low", type=float, default=0.45,
                         help="escalation band lower edge")
    cascade.add_argument("--high", type=float, default=0.55,
                         help="escalation band upper edge")
    add_trace_flags(cascade)
    cascade.set_defaults(fn=_cmd_profile_cascade)

    serve = sub.add_parser(
        "serve",
        help="run the matching daemon: newline-delimited JSON over TCP, "
             "micro-batching, backpressure, hot-swappable weights",
    )
    serve.add_argument("--dataset", default="wdc_computers")
    serve.add_argument("--size", default="small")
    serve.add_argument("--model", default="emba_dual_sb",
                       help="served model (late-interaction models keep "
                            "the hottest record memo)")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--weights", default="",
                       help="run id/name (or 'latest') of published weights "
                            "to load at startup; default: freshly built model")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7431,
                       help="TCP port (0 = pick a free one)")
    serve.add_argument("--shards", type=int, default=0,
                       help="forked worker processes (0 = score in-process)")
    serve.add_argument("--batch-size", type=int, default=32,
                       help="engine forward batch size")
    serve.add_argument("--max-batch", type=int, default=32,
                       help="micro-batcher: dispatch at this many pairs")
    serve.add_argument("--max-delay-ms", type=float, default=2.0,
                       help="micro-batcher: dispatch after this many ms")
    serve.add_argument("--max-queue", type=int, default=1024,
                       help="admission queue bound per worker; beyond it "
                            "requests are rejected as 'overloaded'")
    serve.add_argument("--threshold", type=float, default=0.5,
                       help="match decision threshold")
    serve.add_argument("--runs-root", default="",
                       help="run store root for --weights and swap ops "
                            "(default: REPRO_RUNS_DIR or <cache>/runs)")
    serve.add_argument("--window-s", type=float, default=30.0,
                       help="live-telemetry window for the metrics op / "
                            "`repro top` (seconds)")
    serve.add_argument("--slo", default="",
                       help="SLO spec JSON (see docs/operations.md); "
                            "evaluated every second over the window, "
                            "breaches counted + recorded as run events")
    serve.add_argument("--record", action="store_true",
                       help="register this serve session as a kind='serve' "
                            "run (slo_breach events + final metrics), "
                            "auditable with `repro slo check`")
    serve.add_argument("--name", default="",
                       help="name for the recorded run "
                            "(default: serve-MODEL-DATASET)")
    add_trace_flags(serve)
    serve.set_defaults(fn=_cmd_serve)

    stream = sub.add_parser(
        "stream",
        help="durable streaming resolution: WAL-journaled ingest -> "
             "incremental LSH candidates -> scoring -> incremental "
             "clusters, with kill-at-any-point recovery",
    )
    stream.add_argument("--dir", required=True,
                        help="journal directory; existing state in it is "
                             "recovered before new offers are ingested")
    stream.add_argument("--category", default="computers",
                        help="WDC category to stream "
                             "(computers/cameras/watches/shoes)")
    stream.add_argument("--offers", type=int, default=1000,
                        help="number of synthetic offers to stream")
    stream.add_argument("--offers-per-product", type=int, default=8,
                        help="duplicate offers per catalogue product")
    stream.add_argument("--seed", type=int, default=0)
    stream.add_argument("--scorer", default="jaccard",
                        help="'jaccard' (cheap token-overlap stage) or a "
                             "model name (engine-backed, e.g. emba_dual_ft)")
    stream.add_argument("--dataset", default="",
                        help="dataset for the engine-backed scorer bootstrap "
                             "(default: wdc_<category>)")
    stream.add_argument("--size", default="small")
    stream.add_argument("--weights", default="",
                        help="published weights ref for the engine scorer "
                             "(run id/name or 'latest')")
    stream.add_argument("--batch-size", type=int, default=32,
                        help="engine forward batch size")
    stream.add_argument("--threshold", type=float, default=0.5,
                        help="cluster-edge decision boundary")
    stream.add_argument("--score-batch", type=int, default=64,
                        help="pending pairs per scoring batch (bounds "
                             "in-flight work)")
    stream.add_argument("--sync-every", type=int, default=64,
                        help="WAL group-commit size (ops per fsync)")
    stream.add_argument("--num-hashes", type=int, default=48,
                        help="MinHash signature length")
    stream.add_argument("--bands", type=int, default=12,
                        help="LSH bands; rows = num_hashes // bands, "
                             "more rows per band = stricter candidate curve")
    stream.add_argument("--snapshot-every", type=int, default=2000,
                        help="journaled ops between snapshots (0 = only "
                             "the final snapshot)")
    stream.add_argument("--name", default="",
                        help="name for the recorded run")
    stream.add_argument("--no-record", action="store_true",
                        help="do not register this run in the run store")
    add_trace_flags(stream)
    stream.set_defaults(fn=_cmd_stream)

    trace = sub.add_parser(
        "trace",
        help="render a JSON-lines telemetry trace as a span tree + metrics",
    )
    trace.add_argument("file", help="trace file written via --trace-file "
                                    "or REPRO_TRACE=<path>")
    trace.add_argument("--no-metrics", action="store_true",
                       help="omit the metrics table")
    trace.add_argument("--merge", action="store_true",
                       help="merge this file's pid-suffixed siblings (or a "
                            "whole directory) into one cross-process tree")
    trace.add_argument("--trace-id", default="",
                       help="with --merge: render one request's full "
                            "journey + per-stage latency attribution")
    trace.set_defaults(fn=_cmd_trace)

    top = sub.add_parser(
        "top",
        help="live service telemetry: poll a running daemon's windowed "
             "p50/p99/throughput/rejection-rate view",
    )
    top.add_argument("--host", default="127.0.0.1")
    top.add_argument("--port", type=int, default=7431)
    top.add_argument("--interval", type=float, default=1.0,
                     help="seconds between polls")
    top.add_argument("--count", type=int, default=0,
                     help="stop after N frames (0 = until interrupted)")
    top.add_argument("--timeout", type=float, default=10.0,
                     help="socket timeout per poll")
    top.add_argument("--no-clear", dest="clear", action="store_false",
                     help="do not clear the screen between frames")
    top.set_defaults(fn=_cmd_top)

    slo = sub.add_parser(
        "slo",
        help="service-level objectives: audit recorded serve runs",
    )
    ssub = slo.add_subparsers(dest="slo_command", required=True)
    slo_check = ssub.add_parser(
        "check",
        help="exit non-zero when a recorded serve run breached the spec "
             "(final metrics + live slo_breach events)",
    )
    slo_check.add_argument("ref", nargs="?", default="latest",
                           help="serve run id, name, or 'latest'")
    slo_check.add_argument("--spec", required=True,
                           help="SLO spec JSON (p99_ms, rejection_rate, "
                                "max_queue_depth, worker_restarts, ...)")
    add_root(slo_check)
    slo_check.set_defaults(fn=_cmd_slo_check)

    runs = sub.add_parser(
        "runs",
        help="the persistent run registry: list/show/diff/check/prune",
    )
    rsub = runs.add_subparsers(dest="runs_command", required=True)

    runs_list = rsub.add_parser("list", help="table of recorded runs")
    runs_list.add_argument("--kind", default="",
                           help="only runs of this kind (train, bench, ...)")
    add_root(runs_list)
    runs_list.set_defaults(fn=_cmd_runs_list)

    runs_show = rsub.add_parser(
        "show", help="one run: manifest, metrics, training curves")
    runs_show.add_argument("ref", nargs="?", default="latest",
                           help="run id, run name, or 'latest'")
    runs_show.add_argument("--channel", action="append", default=[],
                           help="series channel to plot (repeatable; "
                                "default: loss, valid_f1)")
    add_root(runs_show)
    runs_show.set_defaults(fn=_cmd_runs_show)

    runs_diff = rsub.add_parser(
        "diff", help="compare two runs: config, metrics, overlaid curves")
    runs_diff.add_argument("a", help="baseline run id/name")
    runs_diff.add_argument("b", nargs="?", default="latest",
                           help="candidate run id/name (default: latest)")
    runs_diff.add_argument("--channel", action="append", default=[],
                           help="series channel to overlay (repeatable)")
    add_root(runs_diff)
    runs_diff.set_defaults(fn=_cmd_runs_diff)

    runs_check = rsub.add_parser(
        "check",
        help="regression watchdog: exit non-zero when the candidate "
             "regressed vs. the baseline",
    )
    runs_check.add_argument("ref", nargs="?", default="latest",
                            help="candidate run id/name (default: latest)")
    runs_check.add_argument("--baseline", required=True,
                            help="baseline run id/name, or a committed "
                                 "manifest.json path")
    runs_check.add_argument("--f1-tol", type=float, default=0.01,
                            help="max allowed absolute em_f1 drop "
                                 "(non-positive disables)")
    runs_check.add_argument("--throughput-tol", type=float, default=0.0,
                            help="max allowed relative infer throughput drop, "
                                 "e.g. 0.2 = 20%% (0 disables; baselines are "
                                 "machine-specific)")
    runs_check.add_argument("--faithfulness-tol", type=float, default=0.0,
                            help="max allowed absolute drop in the explain "
                                 "suite's faithfulness_gap metric "
                                 "(0 disables; only applies when the "
                                 "baseline recorded it)")
    runs_check.add_argument("--agreement-tol", type=float, default=0.0,
                            help="max allowed absolute drop in the explain "
                                 "suite's aoa_lime_spearman metric "
                                 "(0 disables; only applies when the "
                                 "baseline recorded it)")
    runs_check.add_argument("--no-health", action="store_true",
                            help="do not compare fault/health counters")
    add_root(runs_check)
    runs_check.set_defaults(fn=_cmd_runs_check)

    runs_prune = rsub.add_parser("prune", help="delete all but the newest N runs")
    runs_prune.add_argument("--keep", type=int, required=True,
                            help="number of newest runs to keep")
    add_root(runs_prune)
    runs_prune.set_defaults(fn=_cmd_runs_prune)

    sub.add_parser("casestudy", help="print the Sec. 4.7 case-study pair"
                   ).set_defaults(fn=_cmd_casestudy)

    explain = sub.add_parser(
        "explain",
        help="attention-faithfulness audit: AoA token-masking vs. random, "
             "per-head attention drift pre/post fine-tuning, LIME/AoA "
             "agreement (non-zero exit when AoA is not faithful)",
    )
    explain.add_argument("--dataset", default="abt_buy")
    explain.add_argument("--size", default="default")
    explain.add_argument("--model", default="emba_sb",
                         help="an AoA model (emba*, emba_cls*): the audit "
                              "reads its gamma distribution")
    explain.add_argument("--seed", type=int, default=0)
    explain.add_argument("--epochs", type=int, default=0,
                         help="override the dataset's fine-tuning epochs "
                              "(0 = dataset schedule)")
    explain.add_argument("--pairs", type=int, default=80,
                         help="test pairs in the masking curve")
    explain.add_argument("--fraction", action="append", type=float, default=[],
                         help="masking fraction (repeatable; "
                              "default: 0.1 0.25 0.5)")
    explain.add_argument("--random-draws", type=int, default=3,
                         help="random-masking draws averaged per fraction")
    explain.add_argument("--lime-pairs", type=int, default=12,
                         help="pairs in the LIME/AoA agreement sample")
    explain.add_argument("--lime-samples", type=int, default=80,
                         help="LIME perturbation samples per pair")
    explain.add_argument("--topk", type=int, default=5,
                         help="k for the top-k overlap agreement metric")
    explain.add_argument("--drift-pairs", type=int, default=24,
                         help="pairs in the per-head drift comparison")
    explain.add_argument("--save", default="",
                         help="also write the rendered audit to this file")
    explain.add_argument("--name", default="",
                         help="name for the recorded run")
    explain.add_argument("--no-record", action="store_true",
                         help="do not register this audit in the run store")
    explain.add_argument("--runs-root", default="",
                         help="run store root (default: REPRO_RUNS_DIR or "
                              "<cache>/runs)")
    add_trace_flags(explain)
    explain.set_defaults(fn=_cmd_explain)

    selfcheck = sub.add_parser(
        "selfcheck",
        help="numerical certification: gradcheck sweep + runtime invariants "
             "+ golden digests + engine parity (non-zero exit on violation)",
    )
    selfcheck.add_argument("--quick", action="store_true",
                           help="skip the heavy full-model gradcheck cases")
    selfcheck.add_argument("--seed", type=int, default=0)
    selfcheck.set_defaults(fn=_cmd_selfcheck)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    from repro import obs

    if getattr(args, "trace", False) or getattr(args, "trace_file", ""):
        obs.enable(trace_path=getattr(args, "trace_file", "") or None)
    code = args.fn(args)
    # Summarize live telemetry (from --trace or REPRO_TRACE) after the
    # command; `trace` itself reads a file and needs no live summary.
    if obs.enabled() and args.command != "trace":
        print()
        print(obs.render_summary())
        obs.disable()
    return code


if __name__ == "__main__":
    raise SystemExit(main())
