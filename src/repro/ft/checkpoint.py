"""Atomic full-state training checkpoints with integrity checking.

A checkpoint captures *everything* Algorithm 1 needs to continue as if
it had never stopped: model weights, the best-validation snapshot, Adam
moments and step count, the LR-schedule position, the trainer's
``np.random.Generator`` stream, every dropout generator inside the
model, early-stopping internals, and the metric history.  Resuming from
a checkpoint therefore reproduces the uninterrupted run byte for byte
(verified by the determinism suite).

On disk a checkpoint is two files in the checkpoint directory::

    ckpt-00007.npz    all arrays (model/, best/, optimizer slots)
    ckpt-00007.json   manifest: scalars, RNG states, sha256 of the npz

The npz is staged and renamed atomically, and the manifest is written
only after the npz is complete — a crash mid-write leaves either no
trace or an npz without a manifest, both of which the loader ignores.
The manifest embeds the npz's sha256, so silent corruption (truncation,
bit rot, a torn write) is detected at load time and the loader falls
back to the newest *valid* checkpoint.  Retention keeps the last ``k``.
"""

from __future__ import annotations

import copy
import hashlib
import json
import os
import re
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.ft.faults import fault_point
from repro.nn.serialization import CheckpointError, load_arrays, save_arrays
from repro import obs

_FORMAT = 1
_MANIFEST_RE = re.compile(r"^ckpt-(\d{5})\.json$")


# ----------------------------------------------------------------------
# RNG state capture
# ----------------------------------------------------------------------

def rng_state(rng: np.random.Generator) -> dict:
    """JSON-serializable snapshot of a generator's bit-generator state."""
    return copy.deepcopy(rng.bit_generator.state)


def set_rng_state(rng: np.random.Generator, state: dict) -> None:
    rng.bit_generator.state = state


def collect_module_rngs(module) -> dict:
    """Snapshot every ``np.random.Generator`` held by a module tree.

    Dropout layers (and any future module with an ``rng`` attribute) may
    *share* generator objects; sharing is preserved by recording one
    state per distinct generator plus a module-name -> state-index map.
    """
    states: list[dict] = []
    groups: dict[str, int] = {}
    seen: dict[int, int] = {}
    for name, mod in module.named_modules():
        gen = getattr(mod, "rng", None)
        if isinstance(gen, np.random.Generator):
            key = id(gen)
            if key not in seen:
                seen[key] = len(states)
                states.append(rng_state(gen))
            groups[name] = seen[key]
    return {"states": states, "groups": groups}


def restore_module_rngs(module, payload: dict) -> None:
    """Restore generator states captured by :func:`collect_module_rngs`.

    Assumes the module was rebuilt by the same deterministic
    construction path, so the generator-sharing topology matches.
    """
    states = payload["states"]
    groups = payload["groups"]
    restored: set[int] = set()
    for name, mod in module.named_modules():
        gen = getattr(mod, "rng", None)
        if (isinstance(gen, np.random.Generator) and name in groups
                and id(gen) not in restored):
            set_rng_state(gen, states[groups[name]])
            restored.add(id(gen))


# ----------------------------------------------------------------------
# Training state
# ----------------------------------------------------------------------

@dataclass
class TrainingState:
    """Complete state of a fine-tuning run at an epoch boundary."""

    epoch: int                                  # epochs fully completed
    model: dict[str, np.ndarray]
    best_model: dict[str, np.ndarray]
    optimizer: dict                             # Optimizer.state_dict()
    schedule: dict                              # Schedule.state_dict()
    trainer_rng: dict                           # shuffle-stream state
    module_rngs: dict = field(default_factory=lambda: {"states": [], "groups": {}})
    stopper: dict = field(default_factory=dict)
    result: dict = field(default_factory=dict)  # TrainResult fields
    lr_scale: float = 1.0                       # divergence-rollback LR factor
    # Telemetry counters at the boundary (repro.obs), so a resumed run
    # reports cumulative nonfinite_skipped/rollbacks instead of
    # restarting mid-run from zero.  Empty when telemetry was off.
    obs_counters: dict = field(default_factory=dict)


_ARRAY_SLOTS = ("m", "v", "velocity")   # optimizer keys holding array lists


def _flatten_arrays(state: TrainingState) -> dict[str, np.ndarray]:
    arrays: dict[str, np.ndarray] = {}
    for name, value in state.model.items():
        arrays[f"model/{name}"] = value
    for name, value in state.best_model.items():
        arrays[f"best/{name}"] = value
    for slot in _ARRAY_SLOTS:
        for i, value in enumerate(state.optimizer.get(slot, ())):
            arrays[f"optim.{slot}/{i:05d}"] = value
    return arrays


def _unflatten_arrays(arrays: dict[str, np.ndarray], manifest: dict) -> TrainingState:
    model: dict[str, np.ndarray] = {}
    best: dict[str, np.ndarray] = {}
    slots: dict[str, dict[int, np.ndarray]] = {s: {} for s in _ARRAY_SLOTS}
    for key, value in arrays.items():
        group, _, name = key.partition("/")
        if group == "model":
            model[name] = value
        elif group == "best":
            best[name] = value
        elif group.startswith("optim."):
            slots[group[len("optim."):]][int(name)] = value
    optimizer = dict(manifest["optimizer"])
    for slot, items in slots.items():
        if items:
            optimizer[slot] = [items[i] for i in sorted(items)]
    return TrainingState(
        epoch=int(manifest["epoch"]),
        model=model,
        best_model=best,
        optimizer=optimizer,
        schedule=manifest["schedule"],
        trainer_rng=manifest["trainer_rng"],
        module_rngs=manifest["module_rngs"],
        stopper=manifest["stopper"],
        result=manifest["result"],
        lr_scale=float(manifest.get("lr_scale", 1.0)),
        obs_counters=dict(manifest.get("obs_counters", {})),
    )


# ----------------------------------------------------------------------
# Checkpointer
# ----------------------------------------------------------------------

def _sha256(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


class Checkpointer:
    """Save/load :class:`TrainingState` under one directory.

    ``corrupt_skipped`` records epochs whose checkpoints failed
    validation during the most recent :meth:`load_latest` call, for
    reporting and tests.
    """

    def __init__(self, directory: str | Path, keep_last: int = 3):
        if keep_last < 1:
            raise ValueError("keep_last must be >= 1")
        self.directory = Path(directory)
        self.keep_last = keep_last
        self.corrupt_skipped: list[int] = []

    # -- paths ----------------------------------------------------------
    def npz_path(self, epoch: int) -> Path:
        return self.directory / f"ckpt-{epoch:05d}.npz"

    def manifest_path(self, epoch: int) -> Path:
        return self.directory / f"ckpt-{epoch:05d}.json"

    def saved_epochs(self) -> list[int]:
        """Epochs with a committed manifest, ascending (validity unchecked)."""
        if not self.directory.is_dir():
            return []
        epochs = []
        for entry in self.directory.iterdir():
            match = _MANIFEST_RE.match(entry.name)
            if match:
                epochs.append(int(match.group(1)))
        return sorted(epochs)

    # -- save -----------------------------------------------------------
    def save(self, state: TrainingState) -> Path:
        """Atomically persist one checkpoint; prunes to ``keep_last``."""
        with obs.span("checkpoint.save", epoch=state.epoch) as save_span:
            start = time.perf_counter()
            self.directory.mkdir(parents=True, exist_ok=True)
            npz = self.npz_path(state.epoch)
            fault_point("checkpoint.write")
            save_arrays(npz, _flatten_arrays(state))
            fault_point("checkpoint.manifest")
            optimizer_scalars = {k: v for k, v in state.optimizer.items()
                                 if k not in _ARRAY_SLOTS}
            manifest = {
                "format": _FORMAT,
                "epoch": state.epoch,
                "sha256": _sha256(npz),
                "optimizer": optimizer_scalars,
                "schedule": state.schedule,
                "trainer_rng": state.trainer_rng,
                "module_rngs": state.module_rngs,
                "stopper": state.stopper,
                "result": state.result,
                "lr_scale": state.lr_scale,
                "obs_counters": state.obs_counters,
            }
            tmp = self.manifest_path(state.epoch).with_suffix(".json.tmp")
            try:
                tmp.write_text(json.dumps(manifest), encoding="utf-8")
                os.replace(tmp, self.manifest_path(state.epoch))
            finally:
                tmp.unlink(missing_ok=True)
            self._prune()
            if obs.enabled():
                save_span.set("bytes", npz.stat().st_size)
                obs.observe("checkpoint.save_seconds",
                            time.perf_counter() - start, bounds=obs.TIME_BUCKETS)
                obs.inc("checkpoint.saves")
            return self.manifest_path(state.epoch)

    def _prune(self) -> None:
        for epoch in self.saved_epochs()[:-self.keep_last]:
            self.npz_path(epoch).unlink(missing_ok=True)
            self.manifest_path(epoch).unlink(missing_ok=True)
        # npz files whose manifest never committed are dead weight.
        if self.directory.is_dir():
            live = {self.npz_path(e).name for e in self.saved_epochs()}
            for entry in self.directory.glob("ckpt-*.npz"):
                if entry.name not in live:
                    entry.unlink(missing_ok=True)

    # -- load -----------------------------------------------------------
    def load_epoch(self, epoch: int) -> TrainingState:
        """Load one epoch's checkpoint, validating its checksum."""
        manifest_path = self.manifest_path(epoch)
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except FileNotFoundError as exc:
            raise CheckpointError(f"no manifest for epoch {epoch}") from exc
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise CheckpointError(f"corrupt manifest {manifest_path}: {exc}") from exc
        npz = self.npz_path(epoch)
        if not npz.exists():
            raise CheckpointError(f"manifest without npz: {npz}")
        if manifest.get("format") != _FORMAT:
            raise CheckpointError(
                f"unsupported checkpoint format {manifest.get('format')!r}")
        digest = _sha256(npz)
        if digest != manifest.get("sha256"):
            raise CheckpointError(
                f"checksum mismatch for {npz}: manifest {manifest.get('sha256')!r}"
                f" != file {digest!r}")
        try:
            return _unflatten_arrays(load_arrays(npz), manifest)
        except (KeyError, ValueError, TypeError) as exc:
            raise CheckpointError(f"malformed checkpoint {npz}: {exc}") from exc

    def load_latest(self) -> TrainingState | None:
        """Newest valid checkpoint, skipping corrupt/truncated ones."""
        self.corrupt_skipped = []
        with obs.span("checkpoint.load") as load_span:
            start = time.perf_counter()
            for epoch in reversed(self.saved_epochs()):
                try:
                    state = self.load_epoch(epoch)
                except CheckpointError:
                    self.corrupt_skipped.append(epoch)
                    obs.inc("checkpoint.fallbacks")
                    continue
                if obs.enabled():
                    load_span.set("epoch", epoch)
                    load_span.set("skipped", len(self.corrupt_skipped))
                    obs.observe("checkpoint.load_seconds",
                                time.perf_counter() - start,
                                bounds=obs.TIME_BUCKETS)
                return state
        return None
