"""Fault tolerance: crash-safe training and deterministic fault injection.

Three coordinated layers keep long runs alive:

- :mod:`repro.ft.checkpoint` — atomic, checksummed, full-state training
  checkpoints (model + Adam moments + schedule + RNG streams + early
  stopping + history) with keep-last-k retention and corruption
  fallback; ``Trainer.fit(checkpoint_dir=..., resume=True)`` resumes a
  killed run byte-identically.
- :mod:`repro.ft.faults` — a :class:`FaultPlan` registry that injects
  crashes, ENOSPC, NaN losses, and poison pairs at exact sites and hit
  counts, driving the crash-recovery test suite deterministically.
- graceful engine degradation lives in :mod:`repro.engine.core`: a
  scoring failure bisects the batch, quarantines the poison pairs, and
  completes the rest (see ``EngineStats.quarantined``).
"""

from repro.ft.checkpoint import (
    Checkpointer,
    TrainingState,
    collect_module_rngs,
    restore_module_rngs,
    rng_state,
    set_rng_state,
)
from repro.ft.faults import (
    FaultError,
    FaultPlan,
    PoisonError,
    PoisonPairs,
    fault_point,
    inject,
)
from repro.nn.serialization import CheckpointError

__all__ = [
    "CheckpointError",
    "Checkpointer",
    "FaultError",
    "FaultPlan",
    "PoisonError",
    "PoisonPairs",
    "TrainingState",
    "collect_module_rngs",
    "fault_point",
    "inject",
    "restore_module_rngs",
    "rng_state",
    "set_rng_state",
]
