"""Deterministic fault injection for crash-recovery testing.

A :class:`FaultPlan` schedules failures at named *sites* and exact hit
counts, so a test can say "crash at the end of epoch 2" or "NaN-ify the
fifth training loss" and get exactly that, every run.  Instrumented code
calls :func:`fault_point` at its sites; with no plan installed the call
is a no-op returning its value unchanged, so production paths pay one
``is None`` check.

Sites currently instrumented:

- ``trainer.epoch_start``   — hit once per training epoch
- ``trainer.loss``          — hit once per batch, value = the loss tensor
- ``trainer.epoch_end``     — hit after the epoch's checkpoint is saved
- ``checkpoint.write``      — hit before a checkpoint's arrays are written
- ``checkpoint.manifest``   — hit between array write and manifest commit
- ``runner.train``          — hit before each training attempt of a run
- ``serve.batch``           — hit in the serving daemon before each
  micro-batch is dispatched to its worker
- ``serve.worker_batch``    — hit inside a serving worker (in-process or
  forked shard) before a batch is scored; :meth:`FaultPlan.kill_at` here
  kills a shard mid-batch, :meth:`FaultPlan.sleep_at` models a slow shard
- ``wal.append``            — hit before an op is buffered into the
  streaming write-ahead log (value = the op)
- ``wal.fsync``             — hit before a WAL group commit writes and
  fsyncs its buffered ops (value = buffered op count)
- ``wal.snapshot.write``    — hit before the snapshot tmp file is written
- ``wal.snapshot.commit``   — hit between the tmp write and the atomic
  ``os.replace`` that publishes the snapshot
- ``wal.compact``           — hit before the WAL is atomically rewritten
  to drop ops covered by the published snapshot
- ``stream.ingest``         — hit before an arriving record is journaled
- ``stream.score``          — hit before a pending candidate batch is
  handed to the scorer
- ``stream.score.commit``   — hit between scoring and journaling the
  scored results (the re-score-on-recovery window)

:class:`PoisonPairs` covers the other injection mode the engine tests
need: a model wrapper that raises whenever a scored batch contains one
of the designated poison pairs, regardless of batching, so the engine's
bisection logic can be exercised on randomized workloads.
"""

from __future__ import annotations

import errno
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable

import numpy as np


class FaultError(RuntimeError):
    """An injected crash, distinguishable from organic failures.

    ``transient`` marks faults that a bounded-retry caller (the
    experiment runner) is allowed to absorb by resuming from checkpoint.
    """

    def __init__(self, site: str, hit: int, transient: bool = False):
        super().__init__(f"injected fault at {site!r} (hit {hit})")
        self.site = site
        self.hit = hit
        self.transient = transient


class PoisonError(RuntimeError):
    """Raised by :class:`PoisonPairs` when a batch contains a poison pair."""


@dataclass
class _Fault:
    site: str
    at: int                              # fire on the at-th hit (0-based)
    exc: BaseException | None = None     # raise this ...
    mutate: Callable | None = None       # ... or transform the site value
    fired: bool = False


@dataclass
class FaultPlan:
    """A deterministic schedule of failures keyed by (site, hit count)."""

    faults: list[_Fault] = field(default_factory=list)
    counts: dict[str, int] = field(default_factory=dict)

    def fail_at(self, site: str, hit: int, exc: BaseException | None = None,
                transient: bool = False) -> "FaultPlan":
        """Raise at the ``hit``-th visit of ``site`` (default FaultError)."""
        if exc is None:
            exc = FaultError(site, hit, transient=transient)
        self.faults.append(_Fault(site=site, at=hit, exc=exc))
        return self

    def enospc_at(self, site: str, hit: int) -> "FaultPlan":
        """Raise ``OSError(ENOSPC)`` — a full disk — at (site, hit)."""
        return self.fail_at(site, hit, exc=OSError(errno.ENOSPC,
                                                   "injected: no space left on device"))

    def mutate_at(self, site: str, hit: int, fn: Callable) -> "FaultPlan":
        """Pass the site's value through ``fn`` at the given hit."""
        self.faults.append(_Fault(site=site, at=hit, mutate=fn))
        return self

    def nanify_loss_at(self, hit: int) -> "FaultPlan":
        """NaN-ify the ``trainer.loss`` value at the given batch hit."""
        from repro.nn.tensor import Tensor

        return self.mutate_at("trainer.loss", hit,
                              lambda loss: Tensor(np.float32(np.nan)))

    def kill_at(self, site: str, hit: int, code: int = 3) -> "FaultPlan":
        """Hard-kill the *process* at (site, hit) — ``os._exit``, no
        cleanup, no exception.  This is the serve-site analogue of
        ``kill -9``: a shard worker dies mid-batch and the daemon must
        respawn it and requeue the batch."""
        import os

        def _kill(value):
            os._exit(code)

        return self.mutate_at(site, hit, _kill)

    def sleep_at(self, site: str, hit: int, seconds: float) -> "FaultPlan":
        """Stall for ``seconds`` at (site, hit) — a slow worker/shard."""
        import time

        def _stall(value):
            time.sleep(seconds)
            return value

        return self.mutate_at(site, hit, _stall)

    def hits(self, site: str) -> int:
        """How many times ``site`` has been visited under this plan."""
        return self.counts.get(site, 0)

    @property
    def fired(self) -> list[tuple[str, int]]:
        return [(f.site, f.at) for f in self.faults if f.fired]

    def visit(self, site: str, value=None):
        index = self.counts.get(site, 0)
        self.counts[site] = index + 1
        for fault in self.faults:
            if fault.site != site or fault.at != index:
                continue
            fault.fired = True
            if fault.exc is not None:
                raise fault.exc
            value = fault.mutate(value)
        return value


_ACTIVE: FaultPlan | None = None


def fault_point(site: str, value=None):
    """Visit a fault site; inert (returns ``value``) without a plan."""
    if _ACTIVE is None:
        return value
    return _ACTIVE.visit(site, value)


@contextmanager
def inject(plan: FaultPlan):
    """Install ``plan`` as the process-wide fault plan for the block."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = plan
    try:
        yield plan
    finally:
        _ACTIVE = previous


def _row_key(input_ids: np.ndarray, attention_mask: np.ndarray | None = None) -> bytes:
    ids = np.asarray(input_ids, dtype=np.int64)
    if attention_mask is not None:
        ids = ids[np.asarray(attention_mask) > 0]
    return ids.tobytes()


class PoisonPairs:
    """Model wrapper raising :class:`PoisonError` on designated pairs.

    The poison set is keyed by the pair's unpadded ``input_ids`` bytes,
    so detection is independent of how the engine batches or pads the
    workload — exactly the property batch-bisection tests need.
    Attribute access delegates to the wrapped model.
    """

    def __init__(self, model, poisoned):
        object.__setattr__(self, "model", model)
        object.__setattr__(self, "poisoned",
                           {_row_key(e.input_ids) for e in poisoned})

    def is_poisoned(self, encoded_pair) -> bool:
        return _row_key(encoded_pair.input_ids) in self.poisoned

    def __call__(self, batch):
        for row in range(batch.input_ids.shape[0]):
            if _row_key(batch.input_ids[row], batch.attention_mask[row]) in self.poisoned:
                raise PoisonError(f"poison pair in batch row {row}")
        return self.model(batch)

    def __getattr__(self, name):
        return getattr(object.__getattribute__(self, "model"), name)

    def __setattr__(self, name, value):
        setattr(object.__getattribute__(self, "model"), name, value)
