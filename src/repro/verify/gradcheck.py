"""Universal finite-difference gradient checking.

The primitive is :func:`gradcheck`: it takes a *thunk* — a nullary
callable returning a :class:`~repro.nn.tensor.Tensor` — together with
the named float64 leaf tensors the thunk closes over, and compares the
tape's analytic gradients against central differences.

Because module parameters *are* tensors, the same primitive checks bare
ops (leaves are the op's inputs) and whole modules (leaves are the
module's parameters plus any differentiable inputs): perturbing a leaf's
``data`` in place re-evaluates the thunk with the perturbed value, so no
re-wiring is needed.  Non-scalar outputs are contracted to a scalar with
a fixed random projection, which checks the full Jacobian action in one
backward pass.

Requirements on the thunk:

- deterministic — any internal randomness (e.g. dropout) must come from
  a generator re-seeded on every call;
- every leaf must be float64 with ``requires_grad=True`` (use
  :func:`to_float64` to cast a module in place).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

import numpy as np

from repro.nn.module import Module
from repro.nn.tensor import Tensor, no_grad


@dataclass
class GradcheckResult:
    """Outcome of one gradient check."""

    name: str
    passed: bool
    max_rel_error: float        # worst relative error over compared elements
    max_abs_error: float
    checked_elements: int       # finite-difference evaluations / 2
    num_leaves: int
    worst_leaf: str = ""        # leaf holding the worst element
    failures: list[str] = field(default_factory=list)

    def __str__(self) -> str:
        status = "ok" if self.passed else "FAIL"
        return (f"[{status}] {self.name}: max_rel={self.max_rel_error:.3e} "
                f"max_abs={self.max_abs_error:.3e} "
                f"({self.checked_elements} elems / {self.num_leaves} leaves"
                f"{', worst: ' + self.worst_leaf if self.worst_leaf else ''})")


def to_float64(module: Module) -> Module:
    """Cast every parameter of ``module`` to float64, in place."""
    for param in module.parameters():
        param.data = param.data.astype(np.float64)
    return module


def leaves_of(module: Module, prefix: str = "") -> dict[str, Tensor]:
    """The named parameters of a module as a gradcheck leaf dict."""
    return {f"{prefix}{name}": p for name, p in module.named_parameters()}


def _sample_indices(size: int, max_elements: int,
                    rng: np.random.Generator) -> np.ndarray:
    if size <= max_elements:
        return np.arange(size)
    return np.sort(rng.choice(size, size=max_elements, replace=False))


def gradcheck(thunk: Callable[[], Tensor], leaves: Mapping[str, Tensor],
              name: str = "fn", eps: float = 1e-6, rtol: float = 1e-4,
              atol: float = 1e-8, max_elements_per_leaf: int = 16,
              seed: int = 0) -> GradcheckResult:
    """Compare analytic gradients of ``thunk`` against central differences.

    Parameters
    ----------
    thunk:
        Nullary callable producing the output tensor.  Re-evaluated
        ``2 * checked_elements (+1)`` times.
    leaves:
        Name -> float64 tensor with ``requires_grad=True``.  Each leaf's
        ``data`` is perturbed in place and restored.
    eps:
        Central-difference step.
    rtol / atol:
        Pass when ``|analytic - numeric| <= atol + rtol * scale`` where
        ``scale = max(|analytic|, |numeric|)``, elementwise.
    max_elements_per_leaf:
        Large leaves are subsampled (deterministically via ``seed``) to
        this many elements to bound the sweep's cost.

    Returns a :class:`GradcheckResult`; raises nothing on mismatch — the
    caller inspects ``passed`` / ``failures``.
    """
    rng = np.random.default_rng(seed)
    for leaf_name, leaf in leaves.items():
        if leaf.dtype != np.float64:
            raise TypeError(f"leaf {leaf_name!r} must be float64 for gradcheck, "
                            f"got {leaf.dtype}")
        if not leaf.requires_grad:
            raise ValueError(f"leaf {leaf_name!r} must require grad")
        leaf.grad = None

    out = thunk()
    if not isinstance(out, Tensor):
        raise TypeError(f"thunk for {name!r} must return a Tensor, got {type(out)}")
    projection = rng.standard_normal(out.shape)
    scalar = (out * Tensor(projection, dtype=np.float64)).sum()
    scalar.backward()
    analytic = {
        k: (t.grad.copy() if t.grad is not None else np.zeros_like(t.data))
        for k, t in leaves.items()
    }

    def evaluate() -> float:
        with no_grad():
            result = thunk()
        return float((result.data * projection).sum())

    max_rel = 0.0
    max_abs = 0.0
    checked = 0
    worst_leaf = ""
    failures: list[str] = []
    for leaf_name, leaf in leaves.items():
        flat = leaf.data.reshape(-1)
        grads = analytic[leaf_name].reshape(-1)
        for idx in _sample_indices(flat.size, max_elements_per_leaf, rng):
            original = flat[idx]
            flat[idx] = original + eps
            plus = evaluate()
            flat[idx] = original - eps
            minus = evaluate()
            flat[idx] = original
            numeric = (plus - minus) / (2.0 * eps)
            a = float(grads[idx])
            abs_err = abs(a - numeric)
            scale = max(abs(a), abs(numeric))
            rel_err = abs_err / scale if scale > 0 else 0.0
            checked += 1
            if abs_err > max_abs:
                max_abs = abs_err
            if rel_err > max_rel and abs_err > atol:
                max_rel = rel_err
                worst_leaf = leaf_name
            if abs_err > atol + rtol * scale:
                failures.append(
                    f"{leaf_name}[{idx}]: analytic={a:.10g} numeric={numeric:.10g} "
                    f"abs_err={abs_err:.3e} rel_err={rel_err:.3e}"
                )
    for leaf in leaves.values():
        leaf.grad = None
    return GradcheckResult(
        name=name, passed=not failures, max_rel_error=max_rel,
        max_abs_error=max_abs, checked_elements=checked,
        num_leaves=len(leaves), worst_leaf=worst_leaf,
        failures=failures[:20],
    )
