"""Runtime invariant guards over the numerical stack.

When installed (:func:`install`), key call sites are wrapped so that
every execution checks the mathematical invariants the stack relies on:

- ``softmax`` rows sum to 1 and ``log_softmax`` rows exp-sum to 1;
- ``layer_norm`` output matches an independent float64 recomputation and
  is standardized (unit std) wherever the input row has real variance;
- multi-head attention never places probability mass on padded key
  positions;
- AoA ``gamma`` is a valid distribution over the RECORD1 tokens
  (non-negative, sums to 1 over the span, no off-span leakage) whenever
  the module runs masked;
- no NaN/Inf ever enters the tape, forward (``Tensor._make_child``) or
  backward (``Tensor._accumulate``).

Violations raise :class:`InvariantViolation` at the offending call site.

The guards are installed by monkeypatching module/class attributes and
removed by restoring the originals, so the cost when *not* installed is
exactly zero — no flags are consulted on the hot path.  Installation is
triggered by ``REPRO_VERIFY=1`` in the environment (see
``repro/__init__.py``), by ``repro selfcheck``, or manually via
:func:`guarded` / :func:`install`.
"""

from __future__ import annotations

import contextlib
from collections import Counter
from typing import Iterator

import numpy as np


class InvariantViolation(AssertionError):
    """A numerical invariant was violated at runtime."""


_COUNTS: Counter[str] = Counter()
_ORIGINALS: list[tuple[object, str, object]] = []   # (owner, attr, original)


def installed() -> bool:
    """Whether the guards are currently active."""
    return bool(_ORIGINALS)


def guard_report() -> dict[str, int]:
    """How many times each guard fired since the last install."""
    return dict(_COUNTS)


def _tol(dtype, f32: float, f64: float) -> float:
    return f64 if np.dtype(dtype) == np.float64 else f32


def _fail(check: str, detail: str) -> None:
    raise InvariantViolation(f"invariant {check!r} violated: {detail}")


# ----------------------------------------------------------------------
# Individual guards (pure check functions, unit-testable in isolation)
# ----------------------------------------------------------------------

def check_softmax_rows(out: np.ndarray, axis: int) -> None:
    sums = out.sum(axis=axis)
    tol = _tol(out.dtype, 1e-4, 1e-9)
    worst = float(np.abs(sums - 1.0).max()) if sums.size else 0.0
    if worst > tol:
        _fail("softmax.rows_sum_to_one",
              f"row sums deviate from 1 by {worst:.3e} (tol {tol:.1e}, "
              f"shape {out.shape}, axis {axis})")
    _COUNTS["softmax.rows_sum_to_one"] += 1


def check_log_softmax_rows(out: np.ndarray, axis: int) -> None:
    sums = np.exp(out).sum(axis=axis)
    tol = _tol(out.dtype, 1e-4, 1e-9)
    worst = float(np.abs(sums - 1.0).max()) if sums.size else 0.0
    if worst > tol:
        _fail("log_softmax.rows_exp_sum_to_one",
              f"exp-row sums deviate from 1 by {worst:.3e} (tol {tol:.1e}, "
              f"shape {out.shape}, axis {axis})")
    _COUNTS["log_softmax.rows_exp_sum_to_one"] += 1


def check_layer_norm(x: np.ndarray, weight: np.ndarray, bias: np.ndarray,
                     eps: float, out: np.ndarray) -> None:
    data = x.astype(np.float64)
    mean = data.mean(axis=-1, keepdims=True)
    var = ((data - mean) ** 2).mean(axis=-1, keepdims=True)
    normalized = (data - mean) / np.sqrt(var + eps)
    expected = normalized * weight.astype(np.float64) + bias.astype(np.float64)
    tol = _tol(out.dtype, 1e-3, 1e-9)
    worst = float(np.abs(out.astype(np.float64) - expected).max()) if out.size else 0.0
    if worst > tol:
        _fail("layer_norm.matches_recomputation",
              f"output deviates from float64 recomputation by {worst:.3e} "
              f"(tol {tol:.1e}, shape {out.shape})")
    # Standardization: rows with genuine variance must come out unit-std.
    # (Constant rows normalize to ~0 — eps dominates — and are skipped.)
    real = var[..., 0] > 1e-3
    if np.any(real):
        stds = normalized[real].std(axis=-1)
        drift = float(np.abs(stds - 1.0).max())
        if drift > 1e-2:
            _fail("layer_norm.standardized",
                  f"normalized row std deviates from 1 by {drift:.3e} "
                  f"(shape {out.shape})")
    _COUNTS["layer_norm.standardized"] += 1


def check_attention_no_leak(probs: np.ndarray, attention_mask: np.ndarray) -> None:
    mask = np.asarray(attention_mask)
    live = mask.sum(axis=-1) > 0               # fully-padded rows are skipped
    if np.any(live):
        padded = (mask == 0).astype(probs.dtype)    # (B, S) over key positions
        leak = probs[live] * padded[live][:, None, None, :]
        worst = float(leak.max()) if leak.size else 0.0
        if worst > 1e-6:
            _fail("attention.no_padded_leak",
                  f"attention places {worst:.3e} probability on padded keys "
                  f"(shape {probs.shape})")
    _COUNTS["attention.no_padded_leak"] += 1


def check_aoa_gamma(gamma: np.ndarray, mask1: np.ndarray,
                    mask2: np.ndarray) -> None:
    m1 = np.asarray(mask1, dtype=np.float64)
    m2 = np.asarray(mask2, dtype=np.float64)
    tol = _tol(gamma.dtype, 1e-4, 1e-9)
    low = float(gamma.min()) if gamma.size else 0.0
    if low < -tol:
        _fail("aoa.gamma_nonnegative", f"gamma has negative mass {low:.3e}")
    valid = (m1.sum(axis=1) > 0) & (m2.sum(axis=1) > 0)
    if np.any(valid):
        g = gamma.astype(np.float64)[valid]
        span_sum = (g * m1[valid]).sum(axis=1)
        worst = float(np.abs(span_sum - 1.0).max())
        if worst > tol:
            _fail("aoa.gamma_sums_to_one",
                  f"gamma mass over RECORD1 deviates from 1 by {worst:.3e} "
                  f"(tol {tol:.1e})")
        off_span = float((g * (1.0 - m1[valid])).sum(axis=1).max())
        if off_span > 1e-6:
            _fail("aoa.gamma_on_record1_only",
                  f"gamma leaks {off_span:.3e} mass outside RECORD1")
    _COUNTS["aoa.gamma_distribution"] += 1


def check_finite(kind: str, array: np.ndarray) -> None:
    if not np.all(np.isfinite(array)):
        bad = int(np.size(array) - np.count_nonzero(np.isfinite(array)))
        _fail(f"tensor.finite_{kind}",
              f"{bad} non-finite element(s) in {kind} array of shape "
              f"{np.shape(array)}")
    _COUNTS[f"tensor.finite_{kind}"] += 1


# ----------------------------------------------------------------------
# Install / uninstall
# ----------------------------------------------------------------------

def _patch(owner: object, attr: str, replacement: object) -> None:
    _ORIGINALS.append((owner, attr, getattr(owner, attr)))
    setattr(owner, attr, replacement)


def install() -> None:
    """Activate all guards by wrapping the relevant call sites.

    Idempotent: a second call while installed is a no-op.  All imports
    happen here (not at module load) so that merely importing
    :mod:`repro.verify` never drags in the model stack.
    """
    if installed():
        return
    _COUNTS.clear()

    from repro.bert.attention import MultiHeadSelfAttention
    from repro.models.aoa import AttentionOverAttention
    from repro.nn import functional as F
    from repro.nn.tensor import Tensor

    orig_softmax = F.softmax
    orig_log_softmax = F.log_softmax
    orig_layer_norm = F.layer_norm
    orig_attn_forward = MultiHeadSelfAttention.forward
    orig_aoa_forward = AttentionOverAttention.forward
    orig_make_child = Tensor._make_child
    orig_accumulate = Tensor._accumulate

    def softmax_guard(x, axis=-1):
        out = orig_softmax(x, axis=axis)
        check_softmax_rows(out.data, axis)
        return out

    def log_softmax_guard(x, axis=-1):
        out = orig_log_softmax(x, axis=axis)
        check_log_softmax_rows(out.data, axis)
        return out

    def layer_norm_guard(x, weight, bias, eps=1e-5):
        out = orig_layer_norm(x, weight, bias, eps)
        check_layer_norm(x.data, weight.data, bias.data, eps, out.data)
        return out

    def attn_forward_guard(self, hidden, attention_mask):
        output, probs = orig_attn_forward(self, hidden, attention_mask)
        check_attention_no_leak(probs, attention_mask)
        return output, probs

    def aoa_forward_guard(self, sequence, mask1, mask2):
        x, gamma = orig_aoa_forward(self, sequence, mask1, mask2)
        if self.masked:
            check_aoa_gamma(gamma, mask1, mask2)
        return x, gamma

    def make_child_guard(self, data, parents, backward):
        check_finite("forward", data)
        return orig_make_child(self, data, parents, backward)

    def accumulate_guard(self, grad):
        check_finite("backward", grad)
        orig_accumulate(self, grad)

    _patch(F, "softmax", softmax_guard)
    _patch(F, "log_softmax", log_softmax_guard)
    _patch(F, "layer_norm", layer_norm_guard)
    _patch(MultiHeadSelfAttention, "forward", attn_forward_guard)
    _patch(AttentionOverAttention, "forward", aoa_forward_guard)
    _patch(Tensor, "_make_child", make_child_guard)
    _patch(Tensor, "_accumulate", accumulate_guard)


def uninstall() -> None:
    """Restore every wrapped call site (back to strictly zero overhead)."""
    while _ORIGINALS:
        owner, attr, original = _ORIGINALS.pop()
        setattr(owner, attr, original)


@contextlib.contextmanager
def guarded() -> Iterator[None]:
    """Run a block with the guards installed (restores state on exit)."""
    was_installed = installed()
    install()
    try:
        yield
    finally:
        if not was_installed:
            uninstall()
