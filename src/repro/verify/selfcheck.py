"""``repro selfcheck`` — one-shot numerical certification of the stack.

Runs, in order:

1. **registry discovery** — every op/layer must be gradient-checked or
   explicitly exempt (and no case may target something deleted);
2. the **gradcheck sweep** in float64, with the runtime invariant guards
   installed so every forward/backward of the sweep is also invariant-
   checked;
3. the **golden digests** against ``tests/golden/``;
4. **engine-vs-naive parity** on randomized workloads over three seeds
   and both encoder kinds.

Exit status is non-zero on any violation, so the command is directly
usable as a CI gate (see ``scripts/check.sh``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro.verify import golden
from repro.verify.gradcheck import GradcheckResult
from repro.verify.invariants import InvariantViolation, guard_report, guarded
from repro.verify.registry import all_cases, discover, run_case


def run_selfcheck(quick: bool = False, seed: int = 0,
                  out: Callable[[str], None] = print) -> int:
    """Run every verification layer; returns a process exit code."""
    failures: list[str] = []

    # 1. Discovery ------------------------------------------------------
    report = discover()
    out(f"discovery: {report.summary()}")
    for target in report.missing:
        failures.append(f"discovery: {target} has no gradcheck case "
                        f"(register one in repro/verify/registry.py or add "
                        f"it to EXEMPT with a reason)")
    for target in report.stale:
        failures.append(f"discovery: case targets nonexistent {target}")

    # 2. Gradcheck sweep under invariant guards -------------------------
    cases = all_cases(quick=quick)
    out(f"gradcheck: {len(cases)} cases ({'quick' if quick else 'full'} "
        f"sweep, float64, invariant guards installed)")
    worst = 0.0
    with guarded():
        for case in cases:
            try:
                result = run_case(case, seed=seed)
            except InvariantViolation as exc:
                failures.append(f"gradcheck {case.name}: {exc}")
                out(f"  [FAIL] {case.name}: {exc}")
                continue
            worst = max(worst, result.max_rel_error)
            if result.passed:
                out(f"  {result}")
            else:
                failures.append(f"gradcheck {case.name}: "
                                f"{len(result.failures)} element(s) off, "
                                f"max_rel={result.max_rel_error:.3e}")
                out(f"  {result}")
                for line in result.failures[:5]:
                    out(f"      {line}")
        fired = guard_report()
    out(f"gradcheck: max relative error {worst:.3e}; "
        f"{sum(fired.values())} invariant checks fired across "
        f"{len(fired)} guards")
    if not fired:
        failures.append("invariants: no guard fired during the sweep "
                        "(install() is broken)")

    # 3. Golden digests -------------------------------------------------
    for name, mismatches in golden.check().items():
        if mismatches:
            failures.append(f"golden {name}: {len(mismatches)} mismatch(es)")
            out(f"golden: [FAIL] {name}")
            for line in mismatches[:5]:
                out(f"      {line}")
        else:
            out(f"golden: [ok] {name}")

    # 4. Engine-vs-naive parity -----------------------------------------
    try:
        gaps = golden.run_parity()
    except AssertionError as exc:
        failures.append(f"parity: {exc}")
        out(f"parity: [FAIL] {exc}")
    else:
        for key, gap in gaps.items():
            status = "ok" if gap <= golden.PARITY_TOLERANCE else "FAIL"
            out(f"parity: [{status}] {key} max|engine-naive| = {gap:.2e}")
            if gap > golden.PARITY_TOLERANCE:
                failures.append(f"parity {key}: gap {gap:.2e} exceeds "
                                f"{golden.PARITY_TOLERANCE:.0e}")

    # Verdict -----------------------------------------------------------
    if failures:
        out(f"selfcheck: FAILED ({len(failures)} violation(s))")
        for line in failures:
            out(f"  - {line}")
        return 1
    out("selfcheck: OK")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro selfcheck",
        description="Gradcheck sweep + invariants + golden digests + parity.")
    parser.add_argument("--quick", action="store_true",
                        help="skip the heavy full-model gradcheck cases")
    parser.add_argument("--seed", type=int, default=0,
                        help="seed for gradcheck inputs and subsampling")
    args = parser.parse_args(argv)
    return run_selfcheck(quick=args.quick, seed=args.seed)


if __name__ == "__main__":
    sys.exit(main())
