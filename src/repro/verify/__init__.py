"""repro.verify — the numerical-correctness subsystem.

Three layers of guardrails over the hand-rolled autodiff stack:

- :mod:`repro.verify.gradcheck` — a universal finite-difference gradient
  checker working on any differentiable computation expressed as a thunk
  over float64 leaf tensors.
- :mod:`repro.verify.registry` — per-op/per-module check cases plus
  auto-discovery asserting that every op in ``repro.nn.functional`` /
  ``repro.nn.losses`` and every layer in ``repro.nn.layers``,
  ``repro.bert`` and ``repro.models`` is gradient-checked.
- :mod:`repro.verify.invariants` — runtime invariant guards (softmax
  rows, attention-mask leaks, AoA gamma, layer-norm standardization,
  NaN/Inf in forward and backward) installable globally via the
  ``REPRO_VERIFY=1`` environment flag or ``repro selfcheck``, and with
  strictly zero cost when not installed.
- :mod:`repro.verify.golden` — seeded forward/backward golden digests
  for BERT, EMBA and the inference engine's bucketed scoring path, with
  a ``--regen`` flow.

``repro selfcheck`` (see :mod:`repro.verify.selfcheck`) runs all three.
"""

from repro.verify.gradcheck import GradcheckResult, gradcheck, to_float64
from repro.verify.invariants import (
    InvariantViolation,
    guard_report,
    guarded,
    install,
    installed,
    uninstall,
)
from repro.verify.registry import all_cases, discover, run_case, run_all_cases

__all__ = [
    "GradcheckResult",
    "InvariantViolation",
    "all_cases",
    "discover",
    "gradcheck",
    "guard_report",
    "guarded",
    "install",
    "installed",
    "run_all_cases",
    "run_case",
    "to_float64",
    "uninstall",
]
