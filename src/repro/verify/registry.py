"""Gradient-check case registry with auto-discovery.

Every differentiable op in :mod:`repro.nn.functional` /
:mod:`repro.nn.losses` and every layer in :mod:`repro.nn.layers`,
:mod:`repro.nn.rnn`, ``repro.bert`` and ``repro.models`` must have a
registered :class:`CheckCase` (or an entry in :data:`EXEMPT` with a
reason).  :func:`discover` enumerates the targets by introspection, so a
newly added op or layer fails ``repro selfcheck`` until someone writes a
case for it — the registry cannot silently rot.

A case's ``build(rng)`` returns ``(thunk, leaves)`` for
:func:`repro.verify.gradcheck.gradcheck`: the thunk re-runs the
computation (deterministically) and the leaves are the float64 tensors
to differentiate against — op inputs, module parameters, or both.
"""

from __future__ import annotations

import importlib
import inspect
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.nn.tensor import Tensor
from repro.verify.gradcheck import GradcheckResult, gradcheck, leaves_of, to_float64

# ----------------------------------------------------------------------
# Registry machinery
# ----------------------------------------------------------------------

BuildFn = Callable[[np.random.Generator], tuple[Callable[[], Tensor], dict[str, Tensor]]]


@dataclass(frozen=True)
class CheckCase:
    """One gradient-check case covering one or more discovery targets."""

    name: str
    targets: tuple[str, ...]
    build: BuildFn
    rtol: float = 1e-4
    atol: float = 1e-8
    eps: float = 1e-6
    max_elements_per_leaf: int = 16
    heavy: bool = False          # full-model cases, skipped in quick mode


_CASES: dict[str, CheckCase] = {}

#: Discovery targets deliberately not gradient-checked, with the reason.
EXEMPT: dict[str, str] = {
    "repro.nn.functional.attention_mask_bias":
        "returns a plain ndarray additive bias; never on the tape",
    "repro.models.base.EMModel":
        "abstract base; every concrete subclass has its own case",
}


def register(name: str, targets: tuple[str, ...] | list[str], *,
             rtol: float = 1e-4, atol: float = 1e-8, eps: float = 1e-6,
             max_elements_per_leaf: int = 16, heavy: bool = False):
    """Decorator registering a ``build(rng)`` function as a check case."""
    def decorator(build: BuildFn) -> BuildFn:
        if name in _CASES:
            raise ValueError(f"duplicate gradcheck case {name!r}")
        _CASES[name] = CheckCase(
            name=name, targets=tuple(targets), build=build, rtol=rtol,
            atol=atol, eps=eps, max_elements_per_leaf=max_elements_per_leaf,
            heavy=heavy,
        )
        return build
    return decorator


def all_cases(quick: bool = False) -> list[CheckCase]:
    """Registered cases in registration order (quick mode drops heavy ones)."""
    cases = list(_CASES.values())
    if quick:
        cases = [c for c in cases if not c.heavy]
    return cases


def get_case(name: str) -> CheckCase:
    return _CASES[name]


def run_case(case: CheckCase, seed: int = 0) -> GradcheckResult:
    """Build and execute one case."""
    rng = np.random.default_rng(seed)
    thunk, leaves = case.build(rng)
    return gradcheck(
        thunk, leaves, name=case.name, eps=case.eps, rtol=case.rtol,
        atol=case.atol, max_elements_per_leaf=case.max_elements_per_leaf,
        seed=seed,
    )


def run_all_cases(seed: int = 0, quick: bool = False,
                  progress: Callable[[GradcheckResult], None] | None = None
                  ) -> list[GradcheckResult]:
    """Run the whole sweep; never raises — callers inspect ``passed``."""
    results = []
    for case in all_cases(quick=quick):
        result = run_case(case, seed=seed)
        if progress is not None:
            progress(result)
        results.append(result)
    return results


# ----------------------------------------------------------------------
# Auto-discovery
# ----------------------------------------------------------------------

#: Modules whose public *functions* must be gradient-checked.
OP_MODULES = ("repro.nn.functional", "repro.nn.losses")

#: Modules whose *Module subclasses* must be gradient-checked.
LAYER_MODULES = (
    "repro.nn.layers",
    "repro.nn.rnn",
    "repro.bert.attention",
    "repro.bert.embeddings",
    "repro.bert.encoder",
    "repro.bert.model",
    "repro.bert.mlm",
    "repro.fasttext.model",
    "repro.models.aoa",
    "repro.models.base",
    "repro.models.heads",
    "repro.models.surfcon",
    "repro.models.emba",
    "repro.models.emba_dual",
    "repro.models.jointbert",
    "repro.models.single_task",
    "repro.models.ditto",
    "repro.models.jointmatcher",
    "repro.models.deepmatcher",
)


@dataclass
class DiscoveryReport:
    """What auto-discovery found and how the registry covers it."""

    ops: list[str] = field(default_factory=list)
    modules: list[str] = field(default_factory=list)
    covered: list[str] = field(default_factory=list)
    exempt: list[str] = field(default_factory=list)
    missing: list[str] = field(default_factory=list)
    stale: list[str] = field(default_factory=list)   # case targets that no longer exist

    @property
    def ok(self) -> bool:
        return not self.missing and not self.stale

    def summary(self) -> str:
        return (f"discovered {len(self.ops)} ops + {len(self.modules)} modules; "
                f"{len(self.covered)} covered, {len(self.exempt)} exempt, "
                f"{len(self.missing)} missing, {len(self.stale)} stale")


def _discover_targets() -> tuple[list[str], list[str]]:
    from repro.nn.module import Module

    # The Tensor class itself is the op surface for arithmetic, matmul,
    # indexing, reductions and shaping — one explicit discovery target.
    ops: list[str] = ["repro.nn.tensor.Tensor"]
    for mod_name in OP_MODULES:
        mod = importlib.import_module(mod_name)
        for name, obj in sorted(vars(mod).items()):
            if (not name.startswith("_") and inspect.isfunction(obj)
                    and obj.__module__ == mod_name):
                ops.append(f"{mod_name}.{name}")

    modules: list[str] = []
    for mod_name in LAYER_MODULES:
        mod = importlib.import_module(mod_name)
        for name, obj in sorted(vars(mod).items()):
            if (inspect.isclass(obj) and issubclass(obj, Module)
                    and obj.__module__ == mod_name):
                modules.append(f"{mod_name}.{name}")
    return ops, modules


def discover() -> DiscoveryReport:
    """Enumerate checkable targets and diff them against the registry."""
    ops, modules = _discover_targets()
    targets = set(ops) | set(modules)
    case_targets = {t for case in _CASES.values() for t in case.targets}

    report = DiscoveryReport(ops=ops, modules=modules)
    for target in sorted(targets):
        if target in case_targets:
            report.covered.append(target)
        elif target in EXEMPT:
            report.exempt.append(target)
        else:
            report.missing.append(target)
    report.stale = sorted(case_targets - targets)
    return report


# ----------------------------------------------------------------------
# Shared builders
# ----------------------------------------------------------------------

_VOCAB_SIZE = 32
_SEQ = 12
_HIDDEN = 8
_PAD, _UNK, _CLS, _SEP, _MASK = 0, 1, 2, 3, 4


def _leaf(rng: np.random.Generator, *shape: int, low: float = -1.0,
          high: float = 1.0) -> Tensor:
    return Tensor(rng.uniform(low, high, size=shape), requires_grad=True,
                  dtype=np.float64)


def _away_from_zero(rng: np.random.Generator, *shape: int) -> Tensor:
    """Inputs bounded away from 0 for kinked ops (relu, abs)."""
    magnitude = rng.uniform(0.2, 1.0, size=shape)
    sign = np.where(rng.random(shape) < 0.5, -1.0, 1.0)
    return Tensor(magnitude * sign, requires_grad=True, dtype=np.float64)


def _tiny_vocab():
    from repro.text.special_tokens import SPECIAL_TOKENS
    from repro.text.vocab import Vocabulary

    count = _VOCAB_SIZE - len(SPECIAL_TOKENS)  # specials are auto-added first
    return Vocabulary([f"w{i}" if i % 3 else f"m{i}00x" for i in range(count)])


def _tiny_config():
    from repro.bert.config import BertConfig

    return BertConfig(
        vocab_size=_VOCAB_SIZE, hidden_size=_HIDDEN, num_layers=1, num_heads=2,
        intermediate_size=16, max_position=_SEQ, dropout=0.0,
        attention_dropout=0.0,
    )


def _tiny_batch(rng: np.random.Generator, lens=((4, 3), (2, 5), (3, 3))):
    """A small padded Batch with ragged rows (real padding in play)."""
    from repro.data.loader import Batch

    batch = len(lens)
    input_ids = np.zeros((batch, _SEQ), dtype=np.int64)
    segment_ids = np.zeros((batch, _SEQ), dtype=np.int64)
    attention = np.zeros((batch, _SEQ), dtype=np.float32)
    mask1 = np.zeros((batch, _SEQ), dtype=np.float32)
    mask2 = np.zeros((batch, _SEQ), dtype=np.float32)
    for i, (n1, n2) in enumerate(lens):
        length = 3 + n1 + n2
        assert length <= _SEQ
        body = rng.integers(5, _VOCAB_SIZE, size=n1 + n2)
        input_ids[i, :length] = np.concatenate(
            [[_CLS], body[:n1], [_SEP], body[n1:], [_SEP]]
        )
        segment_ids[i, n1 + 2:length] = 1
        attention[i, :length] = 1.0
        mask1[i, 1:1 + n1] = 1.0
        mask2[i, n1 + 2:n1 + 2 + n2] = 1.0
    labels = np.asarray(rng.integers(0, 2, size=batch), dtype=np.float32)
    id1 = rng.integers(0, 3, size=batch).astype(np.int64)
    id2 = rng.integers(0, 3, size=batch).astype(np.int64)
    return Batch(input_ids, segment_ids, attention, mask1, mask2, labels, id1, id2)


def _span_masks(rng: np.random.Generator, batch_: int, seq: int):
    """Two disjoint non-empty 0/1 span masks over a padded sequence."""
    mask1 = np.zeros((batch_, seq), dtype=np.float32)
    mask2 = np.zeros((batch_, seq), dtype=np.float32)
    for i in range(batch_):
        n1 = int(rng.integers(1, seq // 2))
        n2 = int(rng.integers(1, seq // 2))
        mask1[i, 1:1 + n1] = 1.0
        mask2[i, 1 + n1:1 + n1 + n2] = 1.0
    return mask1, mask2


def _model_case(model_factory, multi_task_classes: int = 3):
    """Builder for a full EMModel: gradcheck the Eq. 3 loss wrt all params."""
    def build(rng: np.random.Generator):
        model = model_factory(rng)
        to_float64(model)
        model.eval()  # dropout configs are zero anyway; belt and braces
        batch = _tiny_batch(rng)
        return (lambda: model.loss(model(batch), batch)), leaves_of(model)
    return build


def _bert_encoder_factory(rng: np.random.Generator):
    from repro.bert.model import BertModel

    return BertModel(_tiny_config(), rng)


# ----------------------------------------------------------------------
# Cases: repro.nn.functional
# ----------------------------------------------------------------------

@register("functional.softmax", ["repro.nn.functional.softmax"])
def _case_softmax(rng):
    from repro.nn import functional as F

    x = _leaf(rng, 3, 7, low=-3.0, high=3.0)
    return (lambda: F.softmax(x, axis=-1)), {"x": x}


@register("functional.softmax_masked_axis1",
          ["repro.nn.functional.softmax"])
def _case_softmax_axis1(rng):
    from repro.nn import functional as F

    x = _leaf(rng, 2, 6, 5, low=-3.0, high=3.0)
    bias = F.attention_mask_bias(
        (rng.random((2, 6, 1)) < 0.7).astype(np.float64), dtype=np.float64)
    return (lambda: F.softmax(x + Tensor(bias, dtype=np.float64), axis=1)), {"x": x}


@register("functional.log_softmax", ["repro.nn.functional.log_softmax"])
def _case_log_softmax(rng):
    from repro.nn import functional as F

    x = _leaf(rng, 3, 7, low=-3.0, high=3.0)
    return (lambda: F.log_softmax(x, axis=-1)), {"x": x}


@register("functional.gelu", ["repro.nn.functional.gelu"])
def _case_gelu(rng):
    from repro.nn import functional as F

    x = _leaf(rng, 4, 5, low=-3.0, high=3.0)
    return (lambda: F.gelu(x)), {"x": x}


@register("functional.relu", ["repro.nn.functional.relu"])
def _case_relu(rng):
    from repro.nn import functional as F

    x = _away_from_zero(rng, 4, 5)
    return (lambda: F.relu(x)), {"x": x}


@register("functional.tanh", ["repro.nn.functional.tanh"])
def _case_tanh(rng):
    from repro.nn import functional as F

    x = _leaf(rng, 4, 5, low=-4.0, high=4.0)
    return (lambda: F.tanh(x)), {"x": x}


@register("functional.sigmoid", ["repro.nn.functional.sigmoid"])
def _case_sigmoid(rng):
    from repro.nn import functional as F

    x = _leaf(rng, 4, 5, low=-4.0, high=4.0)
    return (lambda: F.sigmoid(x)), {"x": x}


@register("functional.layer_norm", ["repro.nn.functional.layer_norm"])
def _case_layer_norm(rng):
    from repro.nn import functional as F

    x = _leaf(rng, 3, 4, 6)
    weight = _leaf(rng, 6, low=0.5, high=1.5)
    bias = _leaf(rng, 6)
    return (lambda: F.layer_norm(x, weight, bias)), {
        "x": x, "weight": weight, "bias": bias}


@register("functional.dropout", ["repro.nn.functional.dropout"])
def _case_dropout(rng):
    from repro.nn import functional as F

    x = _leaf(rng, 4, 6)
    # The mask must be identical on every thunk call: re-seed per call.
    return (lambda: F.dropout(x, 0.3, True, np.random.default_rng(7))), {"x": x}


@register("functional.embedding", ["repro.nn.functional.embedding"])
def _case_embedding(rng):
    from repro.nn import functional as F

    weight = _leaf(rng, 10, 5)
    # Repeated indices exercise the scatter-add backward.
    indices = np.array([[0, 3, 3, 7], [9, 0, 1, 3]])
    return (lambda: F.embedding(weight, indices)), {"weight": weight}


@register("functional.masked_fill", ["repro.nn.functional.masked_fill"])
def _case_masked_fill(rng):
    from repro.nn import functional as F

    x = _leaf(rng, 4, 6)
    mask = rng.random((4, 6)) < 0.4
    return (lambda: F.masked_fill(x, mask, -1e9) * Tensor(
        np.where(mask, 0.0, 1.0), dtype=np.float64)), {"x": x}


@register("functional.linear", ["repro.nn.functional.linear"])
def _case_linear(rng):
    from repro.nn import functional as F

    x = _leaf(rng, 3, 4, 6)
    weight = _leaf(rng, 5, 6)
    bias = _leaf(rng, 5)
    return (lambda: F.linear(x, weight, bias)), {
        "x": x, "weight": weight, "bias": bias}


@register("functional.mean_pool", ["repro.nn.functional.mean_pool"])
def _case_mean_pool(rng):
    from repro.nn import functional as F

    x = _leaf(rng, 3, 6, 4)
    mask = (rng.random((3, 6)) < 0.6).astype(np.float64)
    mask[0] = 0.0            # an all-masked row must contribute zero grad
    mask[1, :2] = 1.0        # and at least one row is guaranteed non-empty
    return (lambda: F.mean_pool(x, mask)), {"x": x}


# ----------------------------------------------------------------------
# Cases: repro.nn.losses
# ----------------------------------------------------------------------

@register("losses.bce_with_logits",
          ["repro.nn.losses.binary_cross_entropy_with_logits"])
def _case_bce(rng):
    from repro.nn import losses

    logits = _leaf(rng, 6, low=-3.0, high=3.0)
    targets = rng.integers(0, 2, size=6).astype(np.float64)
    return (lambda: losses.binary_cross_entropy_with_logits(logits, targets)), {
        "logits": logits}


@register("losses.bce_pos_weight",
          ["repro.nn.losses.binary_cross_entropy_with_logits"])
def _case_bce_weighted(rng):
    from repro.nn import losses

    logits = _leaf(rng, 6, low=-3.0, high=3.0)
    targets = rng.integers(0, 2, size=6).astype(np.float64)
    return (lambda: losses.binary_cross_entropy_with_logits(
        logits, targets, pos_weight=2.5)), {"logits": logits}


@register("losses.cross_entropy", ["repro.nn.losses.cross_entropy"])
def _case_cross_entropy(rng):
    from repro.nn import losses

    logits = _leaf(rng, 5, 4, low=-3.0, high=3.0)
    targets = rng.integers(0, 4, size=5)
    return (lambda: losses.cross_entropy(logits, targets)), {"logits": logits}


@register("losses.nll_loss", ["repro.nn.losses.nll_loss"])
def _case_nll(rng):
    from repro.nn import functional as F
    from repro.nn import losses

    logits = _leaf(rng, 5, 4, low=-3.0, high=3.0)
    targets = rng.integers(0, 4, size=5)
    return (lambda: losses.nll_loss(F.log_softmax(logits, axis=-1), targets)), {
        "logits": logits}


# ----------------------------------------------------------------------
# Cases: tensor primitives (extra coverage beyond the mandated sweep)
# ----------------------------------------------------------------------

@register("tensor.matmul_batched", ["repro.nn.tensor.Tensor"])
def _case_matmul(rng):
    a = _leaf(rng, 2, 3, 4)
    b = _leaf(rng, 2, 4, 5)
    v = _leaf(rng, 5)
    return (lambda: (a @ b) @ v), {"a": a, "b": b, "v": v}


@register("tensor.shaping_chain", ["repro.nn.tensor.Tensor"])
def _case_shaping(rng):
    from repro.nn.tensor import concat, stack

    a = _leaf(rng, 3, 4)
    b = _leaf(rng, 3, 4)
    def thunk():
        stacked = stack([a, b], axis=1)               # (3, 2, 4)
        joined = concat([stacked, stacked], axis=-1)  # (3, 2, 8)
        return joined.transpose(2, 0, 1).reshape(8, 6).max(axis=0)
    return thunk, {"a": a, "b": b}


@register("tensor.fancy_index", ["repro.nn.tensor.Tensor"])
def _case_fancy_index(rng):
    x = _leaf(rng, 5, 4)
    rows = np.array([0, 2, 2, 4])   # repeated rows -> scatter-add backward
    cols = np.array([1, 3, 3, 0])
    return (lambda: x[rows, cols] * x[rows, cols]), {"x": x}


@register("tensor.reductions", ["repro.nn.tensor.Tensor"])
def _case_reductions(rng):
    x = _leaf(rng, 3, 4, 5)
    return (lambda: x.mean(axis=(0, 2)) + x.sum(axis=(0, 2)) * 0.1
            + (x * x).sum(axis=0).mean(axis=-1)), {"x": x}


# ----------------------------------------------------------------------
# Cases: repro.nn.layers / repro.nn.rnn
# ----------------------------------------------------------------------

@register("layers.Linear", ["repro.nn.layers.Linear"])
def _case_linear_layer(rng):
    from repro.nn.layers import Linear

    layer = to_float64(Linear(6, 4, rng))
    x = _leaf(rng, 3, 6)
    return (lambda: layer(x)), {"x": x, **leaves_of(layer)}


@register("layers.Embedding", ["repro.nn.layers.Embedding"])
def _case_embedding_layer(rng):
    from repro.nn.layers import Embedding

    layer = to_float64(Embedding(10, 5, rng, padding_idx=0))
    indices = np.array([[1, 4, 4, 0], [9, 2, 1, 4]])
    return (lambda: layer(indices)), leaves_of(layer)


@register("layers.LayerNorm", ["repro.nn.layers.LayerNorm"])
def _case_layernorm_layer(rng):
    from repro.nn.layers import LayerNorm

    layer = to_float64(LayerNorm(6))
    x = _leaf(rng, 3, 6)
    return (lambda: layer(x)), {"x": x, **leaves_of(layer)}


@register("layers.Dropout", ["repro.nn.layers.Dropout"])
def _case_dropout_layer(rng):
    from repro.nn.layers import Dropout

    layer = Dropout(0.25, rng)
    x = _leaf(rng, 4, 6)

    def thunk():
        layer.rng = np.random.default_rng(11)   # same mask every call
        return layer(x)
    return thunk, {"x": x}


@register("layers.Sequential", ["repro.nn.layers.Sequential"])
def _case_sequential(rng):
    from repro.nn.layers import Linear, LayerNorm, Sequential

    seq = to_float64(Sequential(Linear(6, 5, rng), LayerNorm(5), Linear(5, 3, rng)))
    x = _leaf(rng, 4, 6)
    return (lambda: seq(x)), {"x": x, **leaves_of(seq)}


@register("rnn.GRUCell", ["repro.nn.rnn.GRUCell"])
def _case_gru_cell(rng):
    from repro.nn.rnn import GRUCell

    cell = to_float64(GRUCell(5, 4, rng))
    x = _leaf(rng, 3, 5)
    h = _leaf(rng, 3, 4)
    return (lambda: cell(x, h)), {"x": x, "h": h, **leaves_of(cell)}


@register("rnn.GRU_bidirectional", ["repro.nn.rnn.GRU"], max_elements_per_leaf=8)
def _case_gru(rng):
    from repro.nn.rnn import GRU

    gru = to_float64(GRU(4, 3, rng, bidirectional=True))
    x = _leaf(rng, 2, 6, 4)
    mask = np.ones((2, 6), dtype=np.float64)
    mask[0, 4:] = 0.0   # padded tail: final state must ignore it

    def thunk():
        outputs, final = gru(x, mask)
        return outputs + final.expand_dims(1)
    return thunk, {"x": x, **leaves_of(gru)}


# ----------------------------------------------------------------------
# Cases: repro.bert
# ----------------------------------------------------------------------

@register("bert.MultiHeadSelfAttention",
          ["repro.bert.attention.MultiHeadSelfAttention"],
          max_elements_per_leaf=8)
def _case_attention(rng):
    from repro.bert.attention import MultiHeadSelfAttention

    attn = to_float64(MultiHeadSelfAttention(_tiny_config(), rng))
    attn.eval()
    hidden = _leaf(rng, 2, 6, _HIDDEN)
    mask = np.ones((2, 6), dtype=np.float32)
    mask[1, 4:] = 0.0
    return (lambda: attn(hidden, mask)[0]), {"hidden": hidden, **leaves_of(attn)}


@register("bert.TransformerLayer", ["repro.bert.encoder.TransformerLayer"],
          max_elements_per_leaf=6)
def _case_transformer_layer(rng):
    from repro.bert.encoder import TransformerLayer

    layer = to_float64(TransformerLayer(_tiny_config(), rng))
    layer.eval()
    hidden = _leaf(rng, 2, 6, _HIDDEN)
    mask = np.ones((2, 6), dtype=np.float32)
    mask[0, 5:] = 0.0
    return (lambda: layer(hidden, mask)[0]), {"hidden": hidden, **leaves_of(layer)}


@register("bert.BertEncoder", ["repro.bert.encoder.BertEncoder"],
          max_elements_per_leaf=4, heavy=True)
def _case_bert_encoder(rng):
    from repro.bert.encoder import BertEncoder

    encoder = to_float64(BertEncoder(_tiny_config(), rng))
    encoder.eval()
    hidden = _leaf(rng, 2, 6, _HIDDEN)
    mask = np.ones((2, 6), dtype=np.float32)
    mask[1, 3:] = 0.0
    return (lambda: encoder(hidden, mask)[0]), {"hidden": hidden,
                                                **leaves_of(encoder)}


@register("bert.BertEmbeddings", ["repro.bert.embeddings.BertEmbeddings"],
          max_elements_per_leaf=8)
def _case_bert_embeddings(rng):
    from repro.bert.embeddings import BertEmbeddings

    emb = to_float64(BertEmbeddings(_tiny_config(), rng))
    emb.eval()
    batch = _tiny_batch(rng)
    return (lambda: emb(batch.input_ids, batch.segment_ids)), leaves_of(emb)


@register("bert.BertModel", ["repro.bert.model.BertModel"],
          max_elements_per_leaf=4, heavy=True)
def _case_bert_model(rng):
    from repro.bert.model import BertModel

    model = to_float64(BertModel(_tiny_config(), rng))
    model.eval()
    batch = _tiny_batch(rng)

    def thunk():
        out = model(batch.input_ids, batch.attention_mask, batch.segment_ids)
        return out.pooled + out.sequence.mean(axis=1)
    return thunk, leaves_of(model)


@register("bert.BertForMaskedLM", ["repro.bert.mlm.BertForMaskedLM"],
          max_elements_per_leaf=4, heavy=True)
def _case_mlm(rng):
    from repro.bert.mlm import BertForMaskedLM

    model = to_float64(BertForMaskedLM(_tiny_config(), rng))
    model.eval()
    batch = _tiny_batch(rng)
    return (lambda: model(batch.input_ids, batch.attention_mask,
                          batch.segment_ids)), leaves_of(model)


# ----------------------------------------------------------------------
# Cases: repro.fasttext
# ----------------------------------------------------------------------

@register("fasttext.FastTextEmbeddings",
          ["repro.fasttext.model.FastTextEmbeddings"], max_elements_per_leaf=8)
def _case_ft_embeddings(rng):
    from repro.fasttext.model import FastTextEmbeddings
    from repro.text.subword import SubwordHasher

    emb = to_float64(FastTextEmbeddings(_tiny_vocab(), SubwordHasher(num_buckets=64),
                                        6, rng))
    ids = rng.integers(0, _VOCAB_SIZE, size=(2, 5))
    return (lambda: emb(ids)), leaves_of(emb)


@register("fasttext.FastTextEncoder", ["repro.fasttext.model.FastTextEncoder"],
          max_elements_per_leaf=6)
def _case_ft_encoder(rng):
    from repro.fasttext.model import FastTextEncoder
    from repro.text.subword import SubwordHasher

    encoder = to_float64(FastTextEncoder(_tiny_vocab(), SubwordHasher(num_buckets=64),
                                         6, rng))
    encoder.eval()
    batch = _tiny_batch(rng)

    def thunk():
        out = encoder(batch.input_ids, batch.attention_mask, batch.segment_ids)
        return out.pooled + out.sequence.mean(axis=1)
    return thunk, leaves_of(encoder)


# ----------------------------------------------------------------------
# Cases: repro.models building blocks
# ----------------------------------------------------------------------

@register("models.AttentionOverAttention", ["repro.models.aoa.AttentionOverAttention"])
def _case_aoa(rng):
    from repro.models.aoa import AttentionOverAttention

    aoa = AttentionOverAttention(masked=True)
    sequence = _leaf(rng, 3, 10, _HIDDEN)
    mask1, mask2 = _span_masks(rng, 3, 10)
    return (lambda: aoa(sequence, mask1, mask2)[0]), {"sequence": sequence}


@register("models.AttentionOverAttention_unmasked",
          ["repro.models.aoa.AttentionOverAttention"])
def _case_aoa_unmasked(rng):
    from repro.models.aoa import AttentionOverAttention

    aoa = AttentionOverAttention(masked=False)
    sequence = _leaf(rng, 2, 8, _HIDDEN)
    mask1, mask2 = _span_masks(rng, 2, 8)
    return (lambda: aoa(sequence, mask1, mask2)[0]), {"sequence": sequence}


@register("models.BinaryHead", ["repro.models.heads.BinaryHead"])
def _case_binary_head(rng):
    from repro.models.heads import BinaryHead

    head = to_float64(BinaryHead(_HIDDEN, rng))
    x = _leaf(rng, 4, _HIDDEN)
    return (lambda: head(x)), {"x": x, **leaves_of(head)}


@register("models.ClassHead", ["repro.models.heads.ClassHead"])
def _case_class_head(rng):
    from repro.models.heads import ClassHead

    head = to_float64(ClassHead(_HIDDEN, 3, rng))
    x = _leaf(rng, 4, _HIDDEN)
    return (lambda: head(x)), {"x": x, **leaves_of(head)}


@register("models.TokenAggregationHead",
          ["repro.models.heads.TokenAggregationHead"])
def _case_token_agg_head(rng):
    from repro.models.heads import TokenAggregationHead

    head = to_float64(TokenAggregationHead(_HIDDEN, 3, rng))
    sequence = _leaf(rng, 3, 9, _HIDDEN)
    mask, _ = _span_masks(rng, 3, 9)
    return (lambda: head(sequence, mask)), {"sequence": sequence,
                                            **leaves_of(head)}


@register("models.MeanTokenHead", ["repro.models.heads.MeanTokenHead"])
def _case_mean_token_head(rng):
    from repro.models.heads import MeanTokenHead

    head = to_float64(MeanTokenHead(_HIDDEN, 3, rng))
    sequence = _leaf(rng, 3, 9, _HIDDEN)
    mask, _ = _span_masks(rng, 3, 9)
    return (lambda: head(sequence, mask)), {"sequence": sequence,
                                            **leaves_of(head)}


@register("models.SurfConMatcher", ["repro.models.surfcon.SurfConMatcher"],
          max_elements_per_leaf=8)
def _case_surfcon(rng):
    from repro.models.surfcon import SurfConMatcher

    matcher = to_float64(SurfConMatcher(_HIDDEN, rng))
    sequence = _leaf(rng, 2, 9, _HIDDEN)
    mask1, mask2 = _span_masks(rng, 2, 9)
    return (lambda: matcher(sequence, mask1, mask2)), {"sequence": sequence,
                                                       **leaves_of(matcher)}


@register("models.AttentionPool", ["repro.models.deepmatcher._AttentionPool"])
def _case_attention_pool(rng):
    from repro.models.deepmatcher import _AttentionPool

    pool = to_float64(_AttentionPool(_HIDDEN, rng))
    states = _leaf(rng, 3, 7, _HIDDEN)
    mask = np.zeros((3, 7), dtype=np.float32)
    mask[:, :5] = 1.0
    return (lambda: pool(states, mask)), {"states": states, **leaves_of(pool)}


# ----------------------------------------------------------------------
# Cases: full EM models (multi-task losses included), via model.loss
# ----------------------------------------------------------------------

def _register_model(name: str, target: str, factory, **kw):
    register(name, [target], max_elements_per_leaf=6, heavy=True, **kw)(
        _model_case(factory))


def _emba_factory(masked: bool = True):
    def factory(rng):
        from repro.models import Emba

        return Emba(_bert_encoder_factory(rng), _HIDDEN, 3, rng,
                    masked_aoa=masked)
    return factory


def _simple_factory(cls_name: str):
    def factory(rng):
        import repro.models as models

        cls = getattr(models, cls_name)
        return cls(_bert_encoder_factory(rng), _HIDDEN, 3, rng)
    return factory


def _vocab_model_factory(cls_name: str):
    def factory(rng):
        import repro.models as models

        cls = getattr(models, cls_name)
        return cls(_bert_encoder_factory(rng), _HIDDEN, _tiny_vocab(), rng)
    return factory


def _single_task_factory(rng):
    from repro.models import SingleTaskMatcher

    return SingleTaskMatcher(_bert_encoder_factory(rng), _HIDDEN, rng)


def _deepmatcher_factory(rng):
    from repro.models import DeepMatcher

    return DeepMatcher(_VOCAB_SIZE, rng, embed_dim=6, hidden=4, pos_weight=1.5)


_register_model("models.Emba", "repro.models.emba.Emba", _emba_factory(True))
_register_model("models.EmbaDual", "repro.models.emba_dual.EmbaDual",
                _simple_factory("EmbaDual"))
_register_model("models.EmbaCls", "repro.models.emba.EmbaCls",
                _simple_factory("EmbaCls"))
_register_model("models.EmbaSurfCon", "repro.models.emba.EmbaSurfCon",
                _simple_factory("EmbaSurfCon"))
_register_model("models.JointBert", "repro.models.jointbert.JointBert",
                _simple_factory("JointBert"))
_register_model("models.JointBertS", "repro.models.jointbert.JointBertS",
                _simple_factory("JointBertS"))
_register_model("models.JointBertT", "repro.models.jointbert.JointBertT",
                _simple_factory("JointBertT"))
_register_model("models.JointBertCT", "repro.models.jointbert.JointBertCT",
                _simple_factory("JointBertCT"))
_register_model("models.SingleTaskMatcher",
                "repro.models.single_task.SingleTaskMatcher",
                _single_task_factory)
_register_model("models.Ditto", "repro.models.ditto.Ditto",
                _vocab_model_factory("Ditto"))
_register_model("models.JointMatcher", "repro.models.jointmatcher.JointMatcher",
                _vocab_model_factory("JointMatcher"))
_register_model("models.DeepMatcher", "repro.models.deepmatcher.DeepMatcher",
                _deepmatcher_factory)
