"""Golden regression digests and engine-vs-naive differential parity.

Each *workload* is a fully seeded computation over a tiny model — BERT
forward+backward, the EMBA multi-task loss, and the inference engine's
bucketed scoring path — reduced to a JSON *digest*: per-array summary
statistics plus head values, and the engine's exact integer
:class:`~repro.engine.stats.EngineStats` counters.  Digests live in
``tests/golden/*.json`` and are compared with a small relative tolerance
so they survive BLAS/numpy version changes while still catching real
numerical drift.

Regenerate after an intentional numerical change::

    python -m repro.verify.golden --regen

:func:`engine_naive_parity` is the differential check: the engine's
bucketed, memoized scoring must agree with scoring every pair
individually through ``model.predict`` — on randomized ragged workloads,
for both a BERT encoder and the memoizable FastText encoder.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Callable

import numpy as np

GOLDEN_DIR = Path(__file__).resolve().parents[3] / "tests" / "golden"

_RTOL = 1e-5
_ATOL = 1e-7

_VOCAB_SIZE = 32
_HIDDEN = 16
_CLS, _SEP = 2, 3


# ----------------------------------------------------------------------
# Digest primitives
# ----------------------------------------------------------------------

def _digest_array(a: np.ndarray) -> dict:
    flat = np.asarray(a, dtype=np.float64).reshape(-1)
    return {
        "shape": list(np.shape(a)),
        "mean": float(flat.mean()) if flat.size else 0.0,
        "std": float(flat.std()) if flat.size else 0.0,
        "l2": float(np.linalg.norm(flat)),
        "head": [float(v) for v in flat[:5]],
    }


def _compare(path: str, stored, computed, mismatches: list[str]) -> None:
    if isinstance(stored, dict) and isinstance(computed, dict):
        for key in sorted(set(stored) | set(computed)):
            if key not in stored or key not in computed:
                mismatches.append(f"{path}.{key}: present on one side only")
                continue
            _compare(f"{path}.{key}", stored[key], computed[key], mismatches)
    elif isinstance(stored, list) and isinstance(computed, list):
        if len(stored) != len(computed):
            mismatches.append(f"{path}: length {len(stored)} != {len(computed)}")
            return
        for i, (s, c) in enumerate(zip(stored, computed)):
            _compare(f"{path}[{i}]", s, c, mismatches)
    elif isinstance(stored, bool) or isinstance(stored, str) or stored is None:
        if stored != computed:
            mismatches.append(f"{path}: {stored!r} != {computed!r}")
    elif isinstance(stored, int) and isinstance(computed, int):
        if stored != computed:   # exact: counters, shapes, predictions
            mismatches.append(f"{path}: {stored} != {computed}")
    else:
        s, c = float(stored), float(computed)
        if not np.isclose(s, c, rtol=_RTOL, atol=_ATOL):
            mismatches.append(f"{path}: {s!r} != {c!r} "
                              f"(rtol {_RTOL:g}, atol {_ATOL:g})")


# ----------------------------------------------------------------------
# Shared tiny fixtures (seeded, self-contained)
# ----------------------------------------------------------------------

def _tiny_config():
    from repro.bert.config import BertConfig

    return BertConfig(
        vocab_size=_VOCAB_SIZE, hidden_size=_HIDDEN, num_layers=2, num_heads=2,
        intermediate_size=32, max_position=24, dropout=0.0,
        attention_dropout=0.0,
    )


def _random_encoded_pairs(rng: np.random.Generator, count: int,
                          num_ids: int = 3):
    """Ragged synthetic pairs; some records repeat to exercise the caches."""
    from repro.data.loader import EncodedPair

    bodies = [rng.integers(5, _VOCAB_SIZE, size=rng.integers(1, 7)).tolist()
              for _ in range(max(3, count // 3))]
    pairs = []
    for _ in range(count):
        b1 = bodies[int(rng.integers(len(bodies)))]
        b2 = bodies[int(rng.integers(len(bodies)))]
        ids = np.array([_CLS] + b1 + [_SEP] + b2 + [_SEP], dtype=np.int64)
        seg = np.zeros(len(ids), dtype=np.int64)
        seg[len(b1) + 2:] = 1
        mask1 = np.zeros(len(ids), dtype=bool)
        mask1[1:1 + len(b1)] = True
        mask2 = np.zeros(len(ids), dtype=bool)
        mask2[len(b1) + 2:len(b1) + 2 + len(b2)] = True
        pairs.append(EncodedPair(
            input_ids=ids, segment_ids=seg, mask1=mask1, mask2=mask2,
            tokens=[f"t{i}" for i in ids.tolist()],
            label=int(rng.integers(0, 2)),
            id1=int(rng.integers(0, num_ids)),
            id2=int(rng.integers(0, num_ids)),
        ))
    return pairs


def _batch_from_pairs(rng: np.random.Generator, count: int):
    from repro.data.loader import collate

    return collate(_random_encoded_pairs(rng, count))


def _grad_digest(model) -> dict:
    return {name: _digest_array(p.grad) for name, p in model.named_parameters()
            if p.grad is not None}


# ----------------------------------------------------------------------
# Workloads
# ----------------------------------------------------------------------

def workload_bert_forward_backward() -> dict:
    """Seeded BERT forward + backward through a random projection."""
    from repro.bert.model import BertModel
    from repro.nn.tensor import Tensor

    rng = np.random.default_rng(1234)
    model = BertModel(_tiny_config(), rng)
    model.eval()
    batch = _batch_from_pairs(rng, 6)
    out = model(batch.input_ids, batch.attention_mask, batch.segment_ids)
    proj_pooled = Tensor(rng.standard_normal(out.pooled.shape)
                         .astype(np.float32))
    proj_seq = Tensor(rng.standard_normal(out.sequence.shape)
                      .astype(np.float32))
    scalar = (out.pooled * proj_pooled).sum() + (out.sequence * proj_seq).sum()
    scalar.backward()
    return {
        "pooled": _digest_array(out.pooled.data),
        "sequence": _digest_array(out.sequence.data),
        "scalar": float(scalar.data),
        "grads": _grad_digest(model),
    }


def workload_emba_multitask() -> dict:
    """Seeded EMBA dual-objective loss (Eq. 3) forward + backward."""
    from repro.bert.model import BertModel
    from repro.models import Emba

    rng = np.random.default_rng(5678)
    model = Emba(BertModel(_tiny_config(), rng), _HIDDEN, 3, rng)
    model.eval()
    batch = _batch_from_pairs(rng, 6)
    output = model(batch)
    loss = model.loss(output, batch)
    loss.backward()
    return {
        "loss": float(loss.data),
        "em_logits": _digest_array(output.em_logits.data),
        "gamma": _digest_array(output.aoa_gamma),
        "grads": _grad_digest(model),
    }


def workload_engine_bucketed() -> dict:
    """Seeded engine run over a ragged workload: scores + exact stats."""
    from repro.bert.model import BertModel
    from repro.engine import EngineConfig, InferenceEngine
    from repro.models import Emba

    rng = np.random.default_rng(91011)
    model = Emba(BertModel(_tiny_config(), rng), _HIDDEN, 3, rng)
    model.eval()
    pairs = _random_encoded_pairs(rng, 24)
    engine = InferenceEngine(model, config=EngineConfig(batch_size=8))
    out = engine.score_encoded(pairs)
    stats = engine.stats
    return {
        "em_prob": _digest_array(out["em_prob"]),
        "em_pred": [int(v) for v in out["em_pred"].tolist()],
        "id1_pred": [int(v) for v in out["id1_pred"].tolist()],
        "id2_pred": [int(v) for v in out["id2_pred"].tolist()],
        "stats": {
            "pairs_scored": int(stats.pairs_scored),
            "batches": int(stats.batches),
            "token_cells": int(stats.token_cells),
            "real_tokens": int(stats.real_tokens),
        },
    }


WORKLOADS: dict[str, Callable[[], dict]] = {
    "bert_forward_backward": workload_bert_forward_backward,
    "emba_multitask": workload_emba_multitask,
    "engine_bucketed": workload_engine_bucketed,
}


# ----------------------------------------------------------------------
# Check / regen
# ----------------------------------------------------------------------

def golden_path(name: str) -> Path:
    return GOLDEN_DIR / f"{name}.json"


def check(names: list[str] | None = None) -> dict[str, list[str]]:
    """Run workloads and diff against stored digests.

    Returns ``name -> mismatches`` (empty list means the digest matches).
    """
    results: dict[str, list[str]] = {}
    for name in names or sorted(WORKLOADS):
        path = golden_path(name)
        if not path.exists():
            results[name] = [f"golden file missing: {path} "
                             f"(run `python -m repro.verify.golden --regen`)"]
            continue
        stored = json.loads(path.read_text(encoding="utf-8"))
        computed = WORKLOADS[name]()
        mismatches: list[str] = []
        _compare(name, stored, computed, mismatches)
        results[name] = mismatches
    return results


def regen(names: list[str] | None = None) -> list[Path]:
    """Recompute and overwrite the stored digests."""
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    written = []
    for name in names or sorted(WORKLOADS):
        path = golden_path(name)
        path.write_text(json.dumps(WORKLOADS[name](), indent=2, sort_keys=True)
                        + "\n", encoding="utf-8")
        written.append(path)
    return written


# ----------------------------------------------------------------------
# Differential parity: engine vs naive one-pair-at-a-time scoring
# ----------------------------------------------------------------------

def engine_naive_parity(seed: int, count: int = 20, use_fasttext: bool = False
                        ) -> float:
    """Max |engine - naive| probability gap on a randomized ragged workload.

    The naive side collates and scores each pair individually (no
    bucketing, no padding sharing, no memoization); the engine side runs
    the full bucketed path.  With ``use_fasttext=True`` the encoder is
    position-independent, additionally exercising the engine's memoized
    per-record encoder cache and span re-assembly.

    Raises ``AssertionError`` on any hard prediction mismatch.
    """
    from repro.data.loader import collate
    from repro.engine import EngineConfig, InferenceEngine
    from repro.models import Emba
    from repro.nn.tensor import no_grad

    rng = np.random.default_rng(seed)
    if use_fasttext:
        from repro.fasttext.model import FastTextEncoder
        from repro.text.subword import SubwordHasher
        from repro.text.vocab import Vocabulary

        vocab = Vocabulary(f"w{i}" for i in range(_VOCAB_SIZE))
        encoder = FastTextEncoder(vocab, SubwordHasher(num_buckets=64),
                                  _HIDDEN, rng)
    else:
        from repro.bert.model import BertModel

        encoder = BertModel(_tiny_config(), rng)
    model = Emba(encoder, _HIDDEN, 3, rng)
    model.eval()
    pairs = _random_encoded_pairs(rng, count)

    engine = InferenceEngine(model, config=EngineConfig(batch_size=7))
    engine_out = engine.score_encoded(pairs)

    naive_prob = np.zeros(len(pairs))
    naive_pred = np.zeros(len(pairs), dtype=np.int64)
    with no_grad():
        for i, pair in enumerate(pairs):
            pred = model.predict(collate([pair]))
            naive_prob[i] = float(pred["em_prob"][0])
            naive_pred[i] = int(pred["em_pred"][0])

    gap = float(np.abs(engine_out["em_prob"] - naive_prob).max())
    if not np.array_equal(engine_out["em_pred"], naive_pred):
        raise AssertionError(
            f"engine/naive em_pred mismatch (seed {seed}): "
            f"{engine_out['em_pred'].tolist()} vs {naive_pred.tolist()}")
    return gap


#: Pairs must agree to well under any decision threshold granularity.
PARITY_TOLERANCE = 1e-5


def run_parity(seeds: tuple[int, ...] = (0, 1, 2)) -> dict[str, float]:
    """Engine-vs-naive parity over several seeds and both encoder kinds."""
    gaps: dict[str, float] = {}
    for seed in seeds:
        for use_fasttext in (False, True):
            kind = "fasttext" if use_fasttext else "bert"
            gaps[f"{kind}/seed{seed}"] = engine_naive_parity(
                seed, use_fasttext=use_fasttext)
    return gaps


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify.golden",
        description="Check or regenerate the golden regression digests.")
    parser.add_argument("--regen", action="store_true",
                        help="recompute and overwrite the stored digests")
    parser.add_argument("names", nargs="*",
                        help="workload subset (default: all)")
    args = parser.parse_args(argv)
    names = args.names or None
    if args.regen:
        for path in regen(names):
            print(f"wrote {path}")
        return 0
    failed = False
    for name, mismatches in check(names).items():
        if mismatches:
            failed = True
            print(f"[FAIL] {name}")
            for m in mismatches[:10]:
                print(f"    {m}")
        else:
            print(f"[ok] {name}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
