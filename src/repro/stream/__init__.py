"""repro.stream — durable streaming entity resolution.

The incremental counterpart of the batch ``blocking -> scoring ->
resolution`` pipeline: records arrive one at a time, an incremental
MinHash-LSH index emits only the *new* candidate pairs each arrival
creates, a scorer (the inference engine, a cascade, or the cheap
Jaccard stage) scores them in bounded batches, and an incremental
union-find cluster store folds confident edges into the entity
partition — all journaled through a checksummed write-ahead log so a
``kill -9`` at any point recovers, byte-identically, to the state an
uninterrupted run would have reached.

Components
----------
- :class:`~repro.stream.wal.WriteAheadLog` — append-only, fsync-batched
  checksummed JSONL journal with atomic snapshot + compaction;
- :class:`~repro.stream.index.IncrementalMinHashIndex` — insert /
  update / delete over the exact mod-(2^61-1) MinHash banding of
  :class:`~repro.blocking.minhash.MinHashBlocker`, with exactly-once
  candidate emission;
- :class:`~repro.stream.clusters.StreamClusterStore` — union-find
  partition pinned equal to :func:`repro.resolution.resolve_clusters`
  on the same edge set;
- :class:`~repro.stream.pipeline.StreamPipeline` — the end-to-end
  ingest -> candidates -> score -> cluster loop plus crash recovery,
  driven by the ``repro stream`` CLI.
"""

from repro.stream.clusters import StreamClusterStore
from repro.stream.index import IncrementalMinHashIndex
from repro.stream.pipeline import JaccardScorer, StreamConfig, StreamPipeline
from repro.stream.wal import WALCorruptError, WALError, WriteAheadLog

__all__ = [
    "IncrementalMinHashIndex",
    "JaccardScorer",
    "StreamClusterStore",
    "StreamConfig",
    "StreamPipeline",
    "WALCorruptError",
    "WALError",
    "WriteAheadLog",
]
