"""End-to-end durable streaming resolution.

``ingest -> candidates -> score -> cluster``, journaled:

1. an arriving record is journaled as an ``upsert`` op, then applied to
   the :class:`~repro.stream.index.IncrementalMinHashIndex`, which
   returns only the candidate pairs this arrival newly created;
2. new candidates join a bounded *pending* queue; once
   ``score_batch`` pairs are pending, the batch is scored through the
   configured scorer (inference engine, cascade, or the cheap
   :class:`JaccardScorer`) and each result is journaled as a ``scored``
   op before being folded into the
   :class:`~repro.stream.clusters.StreamClusterStore`;
3. every ``snapshot_every`` journaled ops the full pipeline state is
   snapshotted atomically and the WAL compacted.

Crash semantics
---------------
Recovery = snapshot state + deterministic replay of the WAL tail.  All
three state transitions (``upsert``, ``delete``, ``scored``) are pure
functions of prior state, so replay reconstructs exactly the state the
ops described.  Two idempotency layers make kill-at-any-point safe:

- **content-level**: re-ingesting a record whose payload is unchanged
  is a no-op (no journal entry, no emission) — a driver that replays
  its input stream after a crash cannot duplicate work;
- **pair-level**: the index's emitted set and the cluster store's
  scored-edge memory both dedupe by canonical pair key, so a pair is
  counted as emitted once and as scored once, ever, even when a crash
  forces the (side-effect-free) scorer forward to run again.

Fault sites: ``stream.ingest`` (before an arrival is journaled),
``stream.score`` (before the scorer runs), ``stream.score.commit``
(between scoring and journaling the results) — plus every ``wal.*``
site underneath.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro import obs
from repro.data.schema import EntityPair, EntityRecord
from repro.ft.faults import fault_point
from repro.runs import store as runstore
from repro.stream.clusters import StreamClusterStore
from repro.stream.index import IncrementalMinHashIndex, pair_key
from repro.stream.wal import WriteAheadLog
from repro.text.normalize import basic_tokenize

_STATE_FORMAT = 1


@dataclass
class StreamConfig:
    """Tuning knobs of a :class:`StreamPipeline`."""

    threshold: float = 0.5        # cluster-edge decision boundary
    score_batch: int = 64         # max in-flight (pending) pairs before scoring
    sync_every: int = 64          # WAL group-commit size
    snapshot_every: int = 0       # journaled ops between snapshots (0 = manual)
    num_hashes: int = 48          # MinHash signature length
    bands: int = 12               # LSH bands
    seed: int = 0                 # hashing seed (stable across runs)


class JaccardScorer:
    """Cheap deterministic scorer: token-set Jaccard as match probability.

    The zero-dependency stage for high-rate ingest benchmarks and for
    cascades whose cheap stage absorbs the stream; exposes the same
    ``score_pairs -> {"em_prob", "em_pred"}`` surface as the engine.
    """

    def __init__(self, threshold: float = 0.5):
        self.threshold = threshold

    def score_pairs(self, pairs: Sequence[EntityPair],
                    dataset=None) -> dict[str, np.ndarray]:
        probs = np.zeros(len(pairs), dtype=np.float32)
        for i, pair in enumerate(pairs):
            a = set(basic_tokenize(pair.record1.text()))
            b = set(basic_tokenize(pair.record2.text()))
            union = len(a | b)
            probs[i] = (len(a & b) / union) if union else 0.0
        return {"em_prob": probs,
                "em_pred": (probs >= self.threshold).astype(np.int64)}


def _record_payload(record: EntityRecord) -> dict:
    return {"attrs": {k: v for k, v in record.attributes},
            "entity_id": record.entity_id, "source": record.source}


def _payload_record(payload: Mapping) -> EntityRecord:
    return EntityRecord.from_dict(dict(payload["attrs"]),
                                  entity_id=payload.get("entity_id"),
                                  source=payload.get("source") or "")


class StreamPipeline:
    """Durable incremental resolution over one WAL directory.

    Parameters
    ----------
    directory:
        The journal directory.  If it holds a previous incarnation's
        snapshot/WAL, the pipeline recovers from it at construction.
    scorer:
        Anything exposing ``score_pairs(pairs) -> {"em_prob": ...}`` —
        an :class:`~repro.engine.core.InferenceEngine`, a
        :class:`~repro.engine.cascade.CascadeScorer`, or
        :class:`JaccardScorer`.
    """

    def __init__(self, directory: str | Path, scorer,
                 config: StreamConfig | None = None):
        self.config = config or StreamConfig()
        self.scorer = scorer
        self.wal = WriteAheadLog(directory, sync_every=self.config.sync_every)
        self.index = IncrementalMinHashIndex(
            num_hashes=self.config.num_hashes, bands=self.config.bands,
            seed=self.config.seed)
        self.clusters = StreamClusterStore()
        self.records: dict[str, dict] = {}
        self.pending: dict[tuple[str, str], None] = {}
        self.scored_edges: dict[tuple[str, str], float] = {}
        self.counters = {"records": 0, "upserts": 0, "deletes": 0,
                         "candidates": 0, "scored": 0, "score_calls": 0}
        self.recovered = False
        self._ops_since_snapshot = 0
        self._recover()

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _recover(self) -> None:
        with obs.span("stream.recover"):
            state = self.wal.snapshot_state
            if state is not None:
                self._load_state(state)
                self.recovered = True
            replayed = 0
            for _seq, op in self.wal.replay():
                self._apply(op)
                replayed += 1
            if replayed:
                self.recovered = True
            if self.recovered:
                obs.inc("stream.recoveries")
                runstore.record_event(
                    "stream.recover", replayed=replayed,
                    snapshot_seq=self.wal.snapshot_seq,
                    records=len(self.records))

    # ------------------------------------------------------------------
    # Ingest path
    # ------------------------------------------------------------------
    def ingest(self, key: str, record: EntityRecord) -> list[tuple[str, str]]:
        """Journal + apply one arriving record; returns its new pairs.

        Re-ingesting an identical payload is a no-op, which is what
        makes replaying the input stream after a crash exactly-once.
        """
        payload = _record_payload(record)
        if self.records.get(key) == payload:
            return []
        with obs.span("stream.ingest"):
            fault_point("stream.ingest", key)
            op = {"op": "upsert", "key": key, "record": payload}
            self.wal.append(op)
            fresh = self._apply(op)
            obs.inc("stream.records_ingested")
            self._maybe_score()
            self._maybe_snapshot()
        return fresh

    def delete(self, key: str) -> bool:
        """Journal + apply a record removal (cluster membership stays)."""
        if key not in self.records:
            return False
        op = {"op": "delete", "key": key}
        self.wal.append(op)
        self._apply(op)
        self._maybe_snapshot()
        return True

    def extend(self, stream: Iterable[tuple[str, EntityRecord]]) -> int:
        """Ingest a whole (key, record) stream; returns records applied."""
        applied = 0
        for key, record in stream:
            before = self.counters["upserts"]
            self.ingest(key, record)
            applied += self.counters["upserts"] - before
        return applied

    # ------------------------------------------------------------------
    # State transitions (pure; shared by live ops and replay)
    # ------------------------------------------------------------------
    def _apply(self, op: dict) -> list[tuple[str, str]]:
        kind = op["op"]
        if kind == "upsert":
            key = op["key"]
            payload = op["record"]
            is_new = key not in self.records
            self.records[key] = payload
            tokens = basic_tokenize(_payload_record(payload).text())
            fresh = self.index.insert(key, set(tokens))
            self.clusters.add(key)
            for pair in fresh:
                self.pending[pair] = None
            self.counters["upserts"] += 1
            self.counters["records"] += 1 if is_new else 0
            self.counters["candidates"] += len(fresh)
            self._ops_since_snapshot += 1
            return fresh
        if kind == "delete":
            key = op["key"]
            self.records.pop(key, None)
            self.index.delete(key)
            self.pending = {p: None for p in self.pending
                            if key not in p}
            self.counters["deletes"] += 1
            self._ops_since_snapshot += 1
            return []
        if kind == "scored":
            pair = pair_key(op["a"], op["b"])
            self._ops_since_snapshot += 1
            if pair in self.scored_edges:      # replayed duplicate: no-op
                return []
            prob = float(op["p"])
            self.scored_edges[pair] = prob
            self.pending.pop(pair, None)
            self.counters["scored"] += 1
            if prob >= self.config.threshold:
                self.clusters.union(pair[0], pair[1])
            return []
        raise ValueError(f"unknown journal op {kind!r}")

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def _maybe_score(self) -> None:
        while len(self.pending) >= self.config.score_batch:
            self._score_batch(self.config.score_batch)

    def _score_batch(self, limit: int) -> int:
        batch = list(self.pending)[:limit]
        if not batch:
            return 0
        with obs.span("stream.score", pairs=len(batch)):
            fault_point("stream.score", len(batch))
            pairs = [EntityPair(_payload_record(self.records[a]),
                                _payload_record(self.records[b]), 0)
                     for a, b in batch]
            probs = self.scorer.score_pairs(pairs)["em_prob"]
            self.counters["score_calls"] += 1
            fault_point("stream.score.commit", len(batch))
            for (a, b), prob in zip(batch, probs):
                op = {"op": "scored", "a": a, "b": b, "p": float(prob)}
                self.wal.append(op)
                self._apply(op)
            self.wal.sync()
            obs.inc("stream.pairs_scored", len(batch))
        return len(batch)

    def flush(self) -> int:
        """Score every pending pair and sync the journal."""
        total = 0
        while self.pending:
            total += self._score_batch(self.config.score_batch)
        self.wal.sync()
        return total

    # ------------------------------------------------------------------
    # Snapshot
    # ------------------------------------------------------------------
    def _maybe_snapshot(self) -> None:
        if (self.config.snapshot_every
                and self._ops_since_snapshot >= self.config.snapshot_every):
            self.snapshot()

    def snapshot(self) -> int:
        """Persist full state atomically and compact the journal."""
        with obs.span("stream.snapshot", records=len(self.records)):
            start = time.perf_counter()
            seq = self.wal.snapshot(self._state())
            self._ops_since_snapshot = 0
            obs.inc("stream.snapshots")
            runstore.record_event(
                "stream.snapshot", seq=seq, records=len(self.records),
                pending=len(self.pending),
                wall_s=round(time.perf_counter() - start, 6))
        return seq

    def _state(self) -> dict:
        return {
            "format": _STATE_FORMAT,
            "index": self.index.state_dict(),
            "clusters": self.clusters.state_dict(),
            "records": dict(sorted(self.records.items())),
            "pending": [list(p) for p in self.pending],
            "scored": sorted([a, b, p] for (a, b), p in
                             self.scored_edges.items()),
            "counters": dict(self.counters),
        }

    def _load_state(self, state: dict) -> None:
        if state.get("format") != _STATE_FORMAT:
            raise ValueError(f"unsupported stream state format "
                             f"{state.get('format')!r}")
        self.index.load_state_dict(state["index"])
        self.clusters.load_state_dict(state["clusters"])
        self.records = dict(state["records"])
        self.pending = {tuple(p): None for p in state["pending"]}
        self.scored_edges = {(a, b): float(p) for a, b, p in state["scored"]}
        self.counters.update(state["counters"])

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def resolution(self):
        """Current partition (see :meth:`StreamClusterStore.resolution`)."""
        return self.clusters.resolution()

    def stats(self) -> dict:
        return {
            **self.counters,
            "pending": len(self.pending),
            "clusters": self.clusters.resolution().num_clusters,
            "wal": self.wal.stats.as_dict(),
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        self.wal.close()

    def __enter__(self) -> "StreamPipeline":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
