"""Append-only, fsync-batched, checksummed write-ahead log.

Durability model
----------------
Every state mutation of the streaming pipeline is journaled as one
CRC-32-enveloped JSON line (:mod:`repro.jsonl`) carrying a strictly
increasing sequence number.  Appends are buffered in *user space* and
written + fsynced together at explicit :meth:`WriteAheadLog.sync`
points (group commit), so the durability contract is:

- an op is **durable** once the ``sync()`` covering it returns;
- a ``kill -9`` loses at most the un-synced buffered suffix plus,
  under power loss, a torn final line — both recovered from by
  truncating at the tail;
- a bad record *before* the tail is real corruption and refused
  (:class:`WALCorruptError`), never silently skipped.

Snapshot + compaction
---------------------
:meth:`WriteAheadLog.snapshot` persists a full-state payload atomically
(checksummed tmp file, fsync, ``os.replace``, directory fsync), stamped
with the last journaled sequence number, then compacts the log by
atomically replacing it with only the ops newer than the snapshot
(normally none).  Recovery is ``snapshot.state`` + replay of ops with
``seq > snapshot.seq`` — a crash between the snapshot commit and the
compaction merely leaves already-covered ops in the log, which replay
skips by sequence number.

Fault sites (see :mod:`repro.ft.faults`): ``wal.append``,
``wal.fsync``, ``wal.snapshot.write``, ``wal.snapshot.commit``,
``wal.compact`` — one at every boundary where a crash could
plausibly lose or duplicate work.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from repro import obs
from repro.ft.faults import fault_point
from repro.jsonl import (
    ChecksumError,
    JsonlError,
    decode_line,
    encode_line,
    iter_jsonl,
)

_LOG_NAME = "wal.jsonl"
_SNAPSHOT_NAME = "snapshot.json"


class WALError(RuntimeError):
    """Any write-ahead-log failure."""


class WALCorruptError(WALError):
    """Corruption before the tail: bad checksum, bad JSON, or a
    non-monotonic sequence number.  Recovery must not proceed."""


def _fsync_dir(directory: Path) -> None:
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


@dataclass
class WALStats:
    """Observable counters for tests and the obs gauges."""

    appended: int = 0          # ops journaled this process
    syncs: int = 0             # fsync batches
    snapshots: int = 0
    compactions: int = 0
    replayed: int = 0          # tail ops recovered at open
    dropped_tail: int = 0      # torn final lines discarded at open

    def as_dict(self) -> dict:
        return dict(self.__dict__)


class WriteAheadLog:
    """One journal directory: ``wal.jsonl`` + ``snapshot.json``.

    Parameters
    ----------
    directory:
        Created if missing.  Stale ``*.tmp`` files from a crashed
        snapshot/compaction are removed at open.
    sync_every:
        Auto-``sync()`` after this many buffered appends (group
        commit).  ``0`` means only explicit syncs.
    """

    def __init__(self, directory: str | Path, sync_every: int = 64):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.sync_every = int(sync_every)
        self.stats = WALStats()
        self._pending: list[str] = []
        self._fd: int | None = None
        self._closed = False

        for stale in self.directory.glob("*.tmp"):
            stale.unlink(missing_ok=True)

        self.snapshot_seq = 0
        self.snapshot_state: dict | None = None
        self._load_snapshot()
        self._tail: list[tuple[int, dict]] = []
        self.last_seq = self.snapshot_seq
        self._scan_log()

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    @property
    def log_path(self) -> Path:
        return self.directory / _LOG_NAME

    @property
    def snapshot_path(self) -> Path:
        return self.directory / _SNAPSHOT_NAME

    # ------------------------------------------------------------------
    # Recovery scan
    # ------------------------------------------------------------------
    def _load_snapshot(self) -> None:
        path = self.snapshot_path
        if not path.exists():
            return
        try:
            payload = decode_line(path.read_text(encoding="utf-8").strip(),
                                  checksum=True)
        except ValueError as exc:
            # The snapshot is written atomically, so a bad one is real
            # damage (bit rot, manual edits), not an expected crash state.
            raise WALCorruptError(f"{path}: corrupt snapshot: {exc}") from exc
        self.snapshot_seq = int(payload["seq"])
        self.snapshot_state = payload["state"]

    def _scan_log(self) -> None:
        path = self.log_path
        if not path.exists():
            return
        last_seq = None
        last_good_lineno = 0
        try:
            for line in iter_jsonl(path, checksum=True, corrupt="raise",
                                   tail="tolerate"):
                seq = int(line.payload["seq"])
                if last_seq is not None and seq <= last_seq:
                    raise WALCorruptError(
                        f"{path}:{line.lineno}: sequence regressed "
                        f"({last_seq} -> {seq})")
                last_seq = seq
                last_good_lineno = line.lineno
                if seq > self.snapshot_seq:
                    self._tail.append((seq, line.payload["op"]))
        except (ChecksumError, JsonlError) as exc:
            raise WALCorruptError(str(exc)) from exc
        if last_seq is not None:
            self.last_seq = max(self.last_seq, last_seq)
        self._truncate_torn_tail(path, last_good_lineno)
        self.stats.replayed = len(self._tail)

    def _truncate_torn_tail(self, path: Path, last_good_lineno: int) -> None:
        """Physically drop a torn final line before appending resumes.

        Merely ignoring the torn tail on read is not enough: the next
        ``os.write`` append would concatenate onto the partial line,
        fusing a valid op into it and turning an expected crash artifact
        into interior corruption at the *following* open.
        """
        raw = path.read_text(encoding="utf-8")
        lines = raw.split("\n")
        good = "\n".join(lines[:last_good_lineno])
        if good:
            good += "\n"
        if good == raw:
            return
        if raw[len(good):].strip():
            self.stats.dropped_tail += 1
        fd = os.open(path, os.O_WRONLY)
        try:
            os.truncate(fd, len(good.encode("utf-8")))
            os.fsync(fd)
        finally:
            os.close(fd)

    def replay(self) -> Iterator[tuple[int, dict]]:
        """Ops newer than the snapshot, oldest first: ``(seq, op)``."""
        return iter(self._tail)

    # ------------------------------------------------------------------
    # Append path
    # ------------------------------------------------------------------
    def _handle(self) -> int:
        if self._fd is None:
            self._fd = os.open(self.log_path,
                               os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
        return self._fd

    def append(self, op: dict) -> int:
        """Journal one op; durable only after the covering :meth:`sync`.

        Returns the assigned sequence number.
        """
        if self._closed:
            raise WALError("append on a closed WAL")
        fault_point("wal.append", op)
        self.last_seq += 1
        self._pending.append(
            encode_line({"seq": self.last_seq, "op": op}, checksum=True))
        self.stats.appended += 1
        if self.sync_every and len(self._pending) >= self.sync_every:
            self.sync()
        return self.last_seq

    def sync(self) -> None:
        """Write and fsync every buffered append (group commit)."""
        if not self._pending:
            return
        fault_point("wal.fsync", len(self._pending))
        data = ("\n".join(self._pending) + "\n").encode("utf-8")
        fd = self._handle()
        os.write(fd, data)
        os.fsync(fd)
        self._pending.clear()
        self.stats.syncs += 1
        obs.inc("wal.syncs")

    # ------------------------------------------------------------------
    # Snapshot + compaction
    # ------------------------------------------------------------------
    def snapshot(self, state: dict) -> int:
        """Atomically persist ``state`` as of the last journaled op.

        ``state`` must already reflect every appended op (the caller —
        the pipeline — applies ops before snapshotting).  Returns the
        snapshot's sequence stamp.
        """
        if self._closed:
            raise WALError("snapshot on a closed WAL")
        with obs.span("wal.snapshot"):
            self.sync()
            seq = self.last_seq
            line = encode_line({"seq": seq, "state": state}, checksum=True)
            tmp = self.snapshot_path.with_suffix(".json.tmp")
            fault_point("wal.snapshot.write", seq)
            with open(tmp, "w", encoding="utf-8") as handle:
                handle.write(line + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            fault_point("wal.snapshot.commit", seq)
            os.replace(tmp, self.snapshot_path)
            _fsync_dir(self.directory)
            self.snapshot_seq = seq
            self.snapshot_state = state
            self.stats.snapshots += 1
            obs.inc("wal.snapshots")
            self._compact()
        return seq

    def _compact(self) -> None:
        """Rewrite the log keeping only ops newer than the snapshot."""
        fault_point("wal.compact", self.snapshot_seq)
        keep: list[str] = []
        if self.log_path.exists():
            for line in iter_jsonl(self.log_path, checksum=True,
                                   corrupt="raise", tail="tolerate"):
                if int(line.payload["seq"]) > self.snapshot_seq:
                    keep.append(line.raw)
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None
        tmp = self.log_path.with_suffix(".jsonl.tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            if keep:
                handle.write("\n".join(keep) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.log_path)
        _fsync_dir(self.directory)
        self.stats.compactions += 1

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self.sync()
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None
        self._closed = True

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
