"""Incremental MinHash-LSH candidate index with exactly-once emission.

The streaming counterpart of :class:`repro.blocking.minhash.MinHashBlocker`:
the same exact mod-(2^61-1) universal hashing and banding (signatures
are bit-identical to the batch blocker's), but maintained as a live
index that accepts record ``insert`` / ``update`` / ``delete`` and
returns, per mutation, only the candidate pairs that mutation *newly*
created.

Exactly-once discipline: every pair the index has ever surfaced lives
in an ``emitted`` set keyed by the canonical (sorted) key pair.  A
collision that re-occurs — the same two records meeting in another
band, a record deleted and re-inserted, a journaled op re-applied
during crash replay — emits nothing.  This is what makes WAL replay
idempotent: re-applying an op after a crash cannot hand the scorer a
pair twice.

State is snapshot-friendly: per record we persist only its 12 band
bucket keys (hex strings), from which the band tables rebuild exactly
without re-hashing; the emitted set persists as sorted key pairs.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.blocking.minhash import MinHashBlocker


def pair_key(a: str, b: str) -> tuple[str, str]:
    """Canonical (sorted) identity of an unordered candidate pair."""
    return (a, b) if a <= b else (b, a)


class IncrementalMinHashIndex:
    """Insert/update/delete records; emit each candidate pair once.

    Parameters mirror :class:`~repro.blocking.minhash.MinHashBlocker`
    (``num_hashes`` minima cut into ``bands`` bands), and the hashing
    is delegated to it, so streamed signatures match batch signatures
    exactly for the same ``seed``.
    """

    def __init__(self, num_hashes: int = 48, bands: int = 12, seed: int = 0):
        self._blocker = MinHashBlocker(num_hashes=num_hashes, bands=bands,
                                       seed=seed)
        self.num_hashes = num_hashes
        self.bands = bands
        self.seed = seed
        # key -> that record's band bucket keys (hex), one per band.
        self._band_keys: dict[str, list[str]] = {}
        # band -> bucket key -> set of record keys in the bucket.
        self._tables: list[dict[str, set[str]]] = [
            {} for _ in range(bands)]
        self._emitted: set[tuple[str, str]] = set()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._band_keys)

    def __contains__(self, key: str) -> bool:
        return key in self._band_keys

    @property
    def emitted_count(self) -> int:
        return len(self._emitted)

    def emitted_pairs(self) -> set[tuple[str, str]]:
        """Every pair ever surfaced (a copy)."""
        return set(self._emitted)

    def band_keys_of(self, key: str) -> list[str] | None:
        return list(self._band_keys[key]) if key in self._band_keys else None

    # ------------------------------------------------------------------
    # Hashing
    # ------------------------------------------------------------------
    def band_keys_for(self, tokens: Iterable[str]) -> list[str]:
        """The record's bucket key per band (hex of the band's rows)."""
        signature = self._blocker.signature(set(tokens))
        rows = self._blocker.rows
        return [signature[b * rows:(b + 1) * rows].tobytes().hex()
                for b in range(self.bands)]

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def insert(self, key: str, tokens: Iterable[str]) -> list[tuple[str, str]]:
        """Insert (or update) ``key``; return its *new* candidate pairs.

        An existing record is first unlinked (update semantics).  The
        returned pairs are canonical, sorted, and have never been
        returned before — by this call site or any other.
        """
        if key in self._band_keys:
            self.delete(key)
        band_keys = self.band_keys_for(tokens)
        fresh: set[tuple[str, str]] = set()
        for band, bucket_key in enumerate(band_keys):
            bucket = self._tables[band].setdefault(bucket_key, set())
            for other in bucket:
                candidate = pair_key(key, other)
                if candidate not in self._emitted:
                    fresh.add(candidate)
            bucket.add(key)
        self._band_keys[key] = band_keys
        self._emitted.update(fresh)
        return sorted(fresh)

    def delete(self, key: str) -> bool:
        """Unlink ``key`` from every band bucket; emitted pairs stay
        emitted (exactly-once holds across delete / re-insert)."""
        band_keys = self._band_keys.pop(key, None)
        if band_keys is None:
            return False
        for band, bucket_key in enumerate(band_keys):
            bucket = self._tables[band].get(bucket_key)
            if bucket is None:
                continue
            bucket.discard(key)
            if not bucket:
                del self._tables[band][bucket_key]
        return True

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-serializable state: per-record band keys + emitted set."""
        return {
            "num_hashes": self.num_hashes,
            "bands": self.bands,
            "seed": self.seed,
            "band_keys": {k: list(v) for k, v in
                          sorted(self._band_keys.items())},
            "emitted": sorted(list(p) for p in self._emitted),
        }

    def load_state_dict(self, state: dict) -> None:
        """Rebuild band tables exactly from persisted band keys."""
        for attr in ("num_hashes", "bands", "seed"):
            if int(state[attr]) != getattr(self, attr):
                raise ValueError(
                    f"index {attr} mismatch: snapshot has {state[attr]}, "
                    f"index built with {getattr(self, attr)}")
        self._band_keys = {k: list(v) for k, v in state["band_keys"].items()}
        self._tables = [{} for _ in range(self.bands)]
        for key, band_keys in self._band_keys.items():
            for band, bucket_key in enumerate(band_keys):
                self._tables[band].setdefault(bucket_key, set()).add(key)
        self._emitted = {tuple(p) for p in state["emitted"]}

    # ------------------------------------------------------------------
    # Batch parity helper (used by tests)
    # ------------------------------------------------------------------
    def candidates_among(self, keys: Sequence[str]) -> set[tuple[str, str]]:
        """All band collisions currently present among ``keys`` —
        the batch-blocker view of the live index."""
        wanted = set(keys)
        out: set[tuple[str, str]] = set()
        for table in self._tables:
            for bucket in table.values():
                members = sorted(bucket & wanted)
                for i, a in enumerate(members):
                    for b in members[i + 1:]:
                        out.add((a, b))
        return out
