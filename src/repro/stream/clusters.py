"""Crash-safe incremental cluster store: union-find, no networkx.

The streaming counterpart of :func:`repro.resolution.resolve_clusters`:
records register as singletons, confident edges union their components,
and :meth:`StreamClusterStore.resolution` produces a partition pinned
equal to the batch resolver on the same edge set — connected components
are arrival-order invariant, so feeding the same scored edges in any
order (including a crash-replay order) yields the identical partition.

The hot path is a dict-backed union-find with path halving and
union-by-size: O(alpha(n)) per edge, no graph library, no re-clustering
of the world per arrival.  Serialization is canonical (sorted cluster
member lists), so a snapshot taken after replay is byte-identical to
one from an uninterrupted run.
"""

from __future__ import annotations

from typing import Hashable, Iterable

from repro.resolution.clusters import Resolution


class StreamClusterStore:
    """Incremental connected-components partition over record keys."""

    def __init__(self) -> None:
        self._parent: dict[str, str] = {}
        self._size: dict[str, int] = {}
        self.edges_applied = 0
        self.merges = 0

    # ------------------------------------------------------------------
    # Core union-find
    # ------------------------------------------------------------------
    def add(self, key: str) -> None:
        """Register ``key`` as a singleton (idempotent)."""
        if key not in self._parent:
            self._parent[key] = key
            self._size[key] = 1

    def find(self, key: str) -> str:
        """Root of ``key``'s component (path halving)."""
        parent = self._parent
        while parent[key] != key:
            parent[key] = parent[parent[key]]
            key = parent[key]
        return key

    def union(self, a: str, b: str) -> bool:
        """Merge the components of ``a`` and ``b``; True if they were
        separate.  Unknown keys are registered first."""
        self.add(a)
        self.add(b)
        root_a, root_b = self.find(a), self.find(b)
        self.edges_applied += 1
        if root_a == root_b:
            return False
        if self._size[root_a] < self._size[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        self._size[root_a] += self._size[root_b]
        self.merges += 1
        return True

    def connected(self, a: str, b: str) -> bool:
        if a not in self._parent or b not in self._parent:
            return False
        return self.find(a) == self.find(b)

    def __len__(self) -> int:
        return len(self._parent)

    def __contains__(self, key: str) -> bool:
        return key in self._parent

    # ------------------------------------------------------------------
    # Canonical views (parity with the batch resolver)
    # ------------------------------------------------------------------
    def clusters(self) -> list[set[str]]:
        """Components in the batch resolver's canonical order:
        largest first, ties by sorted stringified members."""
        by_root: dict[str, set[str]] = {}
        for key in self._parent:
            by_root.setdefault(self.find(key), set()).add(key)
        out = list(by_root.values())
        out.sort(key=lambda c: (-len(c), sorted(map(str, c))))
        return out

    def resolution(self) -> Resolution:
        """The partition as a :class:`~repro.resolution.clusters.Resolution`
        — directly comparable with :func:`resolve_clusters` output."""
        return Resolution(clusters=self.clusters())

    def assignments(self) -> dict[str, int]:
        """Record -> canonical cluster index (same as
        ``Resolution.cluster_of()`` of the batch resolver)."""
        return self.resolution().cluster_of()

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Canonical, order-independent state: sorted member lists."""
        return {
            "clusters": [sorted(c) for c in self.clusters()],
            "edges_applied": self.edges_applied,
            "merges": self.merges,
        }

    def load_state_dict(self, state: dict) -> None:
        self._parent = {}
        self._size = {}
        for members in state["clusters"]:
            first = members[0]
            self.add(first)
            for other in members[1:]:
                self.add(other)
                root_a, root_b = self.find(first), self.find(other)
                if root_a != root_b:
                    self._parent[root_b] = root_a
                    self._size[root_a] += self._size[root_b]
        self.edges_applied = int(state.get("edges_applied", 0))
        self.merges = int(state.get("merges", 0))

    # ------------------------------------------------------------------
    # Bulk helper
    # ------------------------------------------------------------------
    def apply_edges(self, edges: Iterable[tuple[Hashable, Hashable, float]],
                    threshold: float = 0.5) -> int:
        """Union every edge with probability >= ``threshold``; returns
        the number of merges performed."""
        merged = 0
        for a, b, prob in edges:
            self.add(str(a))
            self.add(str(b))
            if prob >= threshold and self.union(str(a), str(b)):
                merged += 1
        return merged
