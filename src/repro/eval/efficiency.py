"""Throughput measurement (pairs per second) for Table 7.

``measure_throughput`` is the generic stopwatch; ``measure_engine_throughput``
points it at an :class:`~repro.engine.core.InferenceEngine` and also
reports the engine's own counters (padding waste, memo hit rates), which
is what the serving-side efficiency study compares.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

if TYPE_CHECKING:
    from repro.data.loader import EncodedPair
    from repro.engine import InferenceEngine


@dataclass
class ThroughputResult:
    """Items processed per second, with the raw counters."""

    items: int
    seconds: float

    @property
    def items_per_second(self) -> float:
        if self.seconds <= 0:
            return float("inf")
        return self.items / self.seconds


def measure_throughput(step: Callable[[], int], min_seconds: float = 0.5,
                       min_items: int = 32) -> ThroughputResult:
    """Run ``step`` (returning the number of items it processed) until
    both thresholds are met, then report the aggregate rate.

    A single warm-up call is excluded from timing.
    """
    step()  # warm-up
    items = 0
    start = time.perf_counter()
    while True:
        items += step()
        elapsed = time.perf_counter() - start
        if elapsed >= min_seconds and items >= min_items:
            return ThroughputResult(items=items, seconds=elapsed)


def measure_engine_throughput(engine: "InferenceEngine",
                              encoded: Sequence["EncodedPair"],
                              min_seconds: float = 0.5) -> dict:
    """Scoring throughput of an inference engine over an encoded split.

    The warm-up pass populates the engine's memo caches, so the steady
    state measured here reflects serving behaviour on a repeating
    workload.  Returns the rate plus the engine's counters.
    """
    engine.reset_stats()
    result = measure_throughput(
        lambda: len(engine.score_encoded(encoded)["em_prob"]),
        min_seconds=min_seconds, min_items=len(encoded),
    )
    stats = engine.stats
    return {
        "pairs_per_second": result.items_per_second,
        "items": result.items,
        "seconds": result.seconds,
        "pad_waste_ratio": stats.pad_waste_ratio,
        "encode_hit_rate": stats.encode_hit_rate,
        "encoder_hit_rate": stats.encoder_hit_rate,
        "record_hit_rate": stats.record_hit_rate,
        "batches": stats.batches,
    }


def measure_cascade_throughput(scorer, encoded: Sequence["EncodedPair"],
                               min_seconds: float = 0.5) -> dict:
    """Scoring throughput of a :class:`~repro.engine.cascade.CascadeScorer`.

    Same protocol as :func:`measure_engine_throughput` — the warm-up pass
    fills both stages' memo caches — plus the cascade's routing counters.
    """
    scorer.reset_stats()
    result = measure_throughput(
        lambda: len(scorer.score_encoded(encoded)["em_prob"]),
        min_seconds=min_seconds, min_items=len(encoded),
    )
    stats = scorer.stats
    return {
        "pairs_per_second": result.items_per_second,
        "items": result.items,
        "seconds": result.seconds,
        "escalate_fraction": stats.escalate_fraction,
        "cheap_record_hit_rate": stats.cheap.record_hit_rate,
        "full_encoder_hit_rate": stats.full.encoder_hit_rate,
    }
