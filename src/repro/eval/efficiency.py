"""Throughput measurement (pairs per second) for Table 7."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable


@dataclass
class ThroughputResult:
    """Items processed per second, with the raw counters."""

    items: int
    seconds: float

    @property
    def items_per_second(self) -> float:
        if self.seconds <= 0:
            return float("inf")
        return self.items / self.seconds


def measure_throughput(step: Callable[[], int], min_seconds: float = 0.5,
                       min_items: int = 32) -> ThroughputResult:
    """Run ``step`` (returning the number of items it processed) until
    both thresholds are met, then report the aggregate rate.

    A single warm-up call is excluded from timing.
    """
    step()  # warm-up
    items = 0
    start = time.perf_counter()
    while True:
        items += step()
        elapsed = time.perf_counter() - start
        if elapsed >= min_seconds and items >= min_items:
            return ThroughputResult(items=items, seconds=elapsed)
