"""Plain-text table rendering for the benchmark harness output."""

from __future__ import annotations

from typing import Sequence


def _format_cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "") -> str:
    """Render an aligned ASCII table (the benches print these)."""
    rendered = [[_format_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append("  ".join("-" * w for w in widths))
    out.extend(line(row) for row in rendered)
    return "\n".join(out)
