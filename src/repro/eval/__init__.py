"""repro.eval — metrics, significance testing, throughput, and reporting."""

from repro.eval.consistency import (
    ConsistencyReport,
    consistency_report,
    id_equality_as_matcher_f1,
)
from repro.eval.efficiency import (
    ThroughputResult,
    measure_cascade_throughput,
    measure_engine_throughput,
    measure_throughput,
)
from repro.eval.metrics import (
    accuracy,
    binary_f1,
    confusion,
    macro_f1,
    micro_f1,
    precision_recall_f1,
)
from repro.eval.reporting import format_table
from repro.eval.significance import one_tailed_t_test, significance_stars
from repro.eval.threshold import (
    CascadeBand,
    best_f1_threshold,
    calibrate_cascade_band,
    calibrate_model,
    cascade_predictions,
)

__all__ = [
    "CascadeBand",
    "ConsistencyReport",
    "ThroughputResult",
    "accuracy",
    "best_f1_threshold",
    "binary_f1",
    "calibrate_cascade_band",
    "calibrate_model",
    "cascade_predictions",
    "confusion",
    "consistency_report",
    "id_equality_as_matcher_f1",
    "format_table",
    "macro_f1",
    "measure_cascade_throughput",
    "measure_engine_throughput",
    "measure_throughput",
    "micro_f1",
    "one_tailed_t_test",
    "precision_recall_f1",
    "significance_stars",
]
