"""Decision-threshold calibration.

The paper (like DITTO) classifies at probability 0.5; practitioners
usually tune the threshold on validation data to maximize F1, which
matters under the heavy class imbalance typical of EM.  This module
provides that calibration as a library utility.
"""

from __future__ import annotations

import numpy as np

from repro.eval.metrics import precision_recall_f1


def best_f1_threshold(labels: np.ndarray, probabilities: np.ndarray
                      ) -> tuple[float, float]:
    """Threshold on ``probabilities`` maximizing F1 against ``labels``.

    Scans the midpoints between consecutive distinct probabilities (plus
    the 0.5 default), so the search is exact for the given sample.
    Returns ``(threshold, f1_at_threshold)``.

    Degenerate inputs never crash and fall back to the paper's default
    threshold of **0.5**: an empty validation set returns ``(0.5, 0.0)``,
    and when no threshold achieves positive F1 (e.g. an all-negative
    label set) the default 0.5 is kept.  All-identical scores are
    handled by probing just above and below the single distinct value.
    """
    labels = np.asarray(labels).astype(int)
    probabilities = np.asarray(probabilities, dtype=np.float64)
    if labels.shape != probabilities.shape:
        raise ValueError(
            f"shape mismatch: {labels.shape} vs {probabilities.shape}"
        )
    if labels.size == 0:
        return 0.5, 0.0

    distinct = np.unique(probabilities)
    candidates = [0.5]
    if distinct.size > 1:
        candidates.extend(((distinct[:-1] + distinct[1:]) / 2).tolist())
    candidates.extend([distinct[0] - 1e-6, distinct[-1] + 1e-6])

    best_threshold, best_f1 = 0.5, -1.0
    for threshold in candidates:
        _, _, f1 = precision_recall_f1(labels, (probabilities >= threshold).astype(int))
        if f1 > best_f1:
            best_threshold, best_f1 = float(threshold), f1
    return best_threshold, best_f1


def calibrate_model(model, encoded_valid, batch_size: int = 32) -> float:
    """Pick the validation-F1-optimal threshold for a trained EMModel."""
    from repro.engine import EngineConfig, InferenceEngine

    if not encoded_valid:
        return 0.5
    engine = InferenceEngine(model, config=EngineConfig(batch_size=batch_size))
    out = engine.score_encoded(encoded_valid)
    threshold, _ = best_f1_threshold(out["labels"], out["em_prob"])
    return threshold
