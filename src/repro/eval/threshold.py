"""Decision-threshold calibration.

The paper (like DITTO) classifies at probability 0.5; practitioners
usually tune the threshold on validation data to maximize F1, which
matters under the heavy class imbalance typical of EM.  This module
provides that calibration as a library utility, plus the escalation-band
calibration for the staged (cheap -> full) cascade scorer: the band is
chosen on validation data to escalate as few pairs as possible while
keeping cascade F1 within a stated tolerance of scoring everything with
the full model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.eval.metrics import precision_recall_f1


def best_f1_threshold(labels: np.ndarray, probabilities: np.ndarray
                      ) -> tuple[float, float]:
    """Threshold on ``probabilities`` maximizing F1 against ``labels``.

    Scans the midpoints between consecutive distinct probabilities (plus
    the 0.5 default), so the search is exact for the given sample.
    Returns ``(threshold, f1_at_threshold)``.

    Degenerate inputs never crash and fall back to the paper's default
    threshold of **0.5**: an empty validation set returns ``(0.5, 0.0)``,
    and when no threshold achieves positive F1 (e.g. an all-negative
    label set) the default 0.5 is kept.  All-identical scores are
    handled by probing just above and below the single distinct value.
    """
    labels = np.asarray(labels).astype(int)
    probabilities = np.asarray(probabilities, dtype=np.float64)
    if labels.shape != probabilities.shape:
        raise ValueError(
            f"shape mismatch: {labels.shape} vs {probabilities.shape}"
        )
    if labels.size == 0:
        return 0.5, 0.0

    distinct = np.unique(probabilities)
    candidates = [0.5]
    if distinct.size > 1:
        candidates.extend(((distinct[:-1] + distinct[1:]) / 2).tolist())
    candidates.extend([distinct[0] - 1e-6, distinct[-1] + 1e-6])

    best_threshold, best_f1 = 0.5, -1.0
    for threshold in candidates:
        _, _, f1 = precision_recall_f1(labels, (probabilities >= threshold).astype(int))
        if f1 > best_f1:
            best_threshold, best_f1 = float(threshold), f1
    return best_threshold, best_f1


@dataclass(frozen=True)
class CascadeBand:
    """A calibrated cheap-score escalation band and its validation stats.

    Cheap probabilities in ``[low, high]`` (inclusive) are escalated to
    the full model; ``p < low`` is routed to non-match and ``p > high``
    to match without ever running the full model.
    """

    low: float
    high: float
    escalate_fraction: float   # fraction of validation pairs escalated
    cascade_f1: float          # validation F1 of the cascaded decisions
    full_f1: float             # validation F1 of full-model-everywhere


def cascade_predictions(cheap_probs: np.ndarray, full_probs: np.ndarray,
                        low: float, high: float, threshold: float = 0.5
                        ) -> tuple[np.ndarray, np.ndarray]:
    """Cascaded decisions: returns ``(predictions, escalated_mask)``.

    ``full_probs`` only matters where the mask is True, so callers that
    already know the band may pass full scores computed on just the
    escalated subset scattered into a full-length array.
    """
    cheap_probs = np.asarray(cheap_probs, dtype=np.float64)
    full_probs = np.asarray(full_probs, dtype=np.float64)
    escalated = (cheap_probs >= low) & (cheap_probs <= high)
    preds = np.where(cheap_probs > high, 1, 0)
    preds[escalated] = (full_probs[escalated] >= threshold).astype(int)
    return preds.astype(np.int64), escalated


def _band_edges(values: np.ndarray, limit: int = 48) -> np.ndarray:
    """Candidate band edges: midpoints between distinct scores, capped."""
    distinct = np.unique(values)
    if distinct.size < 2:
        return distinct
    mids = (distinct[:-1] + distinct[1:]) / 2
    if mids.size > limit:
        mids = mids[np.linspace(0, mids.size - 1, limit).round().astype(int)]
    return mids


def calibrate_cascade_band(labels: np.ndarray, cheap_probs: np.ndarray,
                           full_probs: np.ndarray, *,
                           tolerance: float = 0.01,
                           threshold: float = 0.5) -> CascadeBand:
    """Pick the escalation band minimizing full-model work on validation.

    Scans candidate ``(low, high)`` bands (midpoints between distinct
    cheap scores on each side of ``threshold``) and returns the band
    escalating the fewest pairs whose cascaded F1 stays within
    ``tolerance`` (absolute) of scoring every pair with the full model.
    The all-escalate band ``(0, 1)`` is always a candidate, so the
    returned band is always feasible; ties prefer fewer escalations,
    then the wider band (safer on unseen data).
    """
    labels = np.asarray(labels).astype(int)
    cheap_probs = np.asarray(cheap_probs, dtype=np.float64)
    full_probs = np.asarray(full_probs, dtype=np.float64)
    if labels.shape != cheap_probs.shape or labels.shape != full_probs.shape:
        raise ValueError("labels/cheap_probs/full_probs shapes differ")
    if labels.size == 0:
        return CascadeBand(0.0, 1.0, 0.0, 0.0, 0.0)

    _, _, full_f1 = precision_recall_f1(
        labels, (full_probs >= threshold).astype(int))
    lows = np.concatenate(
        ([0.0], _band_edges(cheap_probs[cheap_probs < threshold]),
         [threshold]))
    highs = np.concatenate(
        ([threshold], _band_edges(cheap_probs[cheap_probs >= threshold]),
         [1.0]))

    best: CascadeBand | None = None
    for low in lows:
        for high in highs:
            if low > high:
                continue
            preds, escalated = cascade_predictions(
                cheap_probs, full_probs, low, high, threshold)
            _, _, f1 = precision_recall_f1(labels, preds)
            if f1 < full_f1 - tolerance:
                continue
            fraction = float(escalated.mean())
            width = high - low
            if (best is None or fraction < best.escalate_fraction
                    or (fraction == best.escalate_fraction
                        and width > best.high - best.low)):
                best = CascadeBand(float(low), float(high), fraction,
                                   f1, full_f1)
    if best is None:  # numerically impossible (0,1) reproduces full_f1
        best = CascadeBand(0.0, 1.0, 1.0, full_f1, full_f1)
    return best


def calibrate_model(model, encoded_valid, batch_size: int = 32) -> float:
    """Pick the validation-F1-optimal threshold for a trained EMModel."""
    from repro.engine import EngineConfig, InferenceEngine

    if not encoded_valid:
        return 0.5
    engine = InferenceEngine(model, config=EngineConfig(batch_size=batch_size))
    out = engine.score_encoded(encoded_valid)
    threshold, _ = best_f1_threshold(out["labels"], out["em_prob"])
    return threshold
