"""Statistical significance testing (the paper's Sec. 4.3.2 analysis).

The paper runs a one-tailed t-test of H0: mu_EMBA <= mu_JointBERT against
Ha: mu_EMBA > mu_JointBERT over 5 training runs, and annotates Table 2
with significance stars.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy import stats


def one_tailed_t_test(sample_a: Sequence[float], sample_b: Sequence[float]) -> float:
    """p-value for Ha: mean(sample_a) > mean(sample_b) (Welch's t-test)."""
    sample_a = np.asarray(sample_a, dtype=np.float64)
    sample_b = np.asarray(sample_b, dtype=np.float64)
    if sample_a.size < 2 or sample_b.size < 2:
        raise ValueError("each sample needs at least two observations")
    result = stats.ttest_ind(sample_a, sample_b, equal_var=False,
                             alternative="greater")
    return float(result.pvalue)


def significance_stars(p_value: float) -> str:
    """The paper's star notation: **** p<1e-4 ... * p<0.05, 'ns' otherwise."""
    if not np.isfinite(p_value):
        return "ns"
    if p_value < 1e-4:
        return "****"
    if p_value < 1e-3:
        return "***"
    if p_value < 1e-2:
        return "**"
    if p_value < 5e-2:
        return "*"
    return "ns"
