"""EM-vs-entity-ID prediction consistency (the paper's Figure 1b).

The paper motivates EMBA with an example where JointBERT predicts the
*same* entity ID for both records yet the pair is a non-match — the
auxiliary and main heads contradict each other.  A multi-task matcher is
internally consistent when "predicted match" co-occurs with "same
predicted entity ID".  These utilities quantify that agreement for any
multi-task model's predictions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class ConsistencyReport:
    """Agreement statistics between the EM head and the ID heads."""

    agreement_rate: float        # fraction of pairs where heads agree
    match_but_different_ids: int  # EM says match, IDs differ (Fig. 1b's EMBA case)
    nonmatch_but_same_ids: int    # EM says non-match, IDs equal
    total: int

    @property
    def contradictions(self) -> int:
        return self.match_but_different_ids + self.nonmatch_but_same_ids


def consistency_report(em_pred: np.ndarray, id1_pred: np.ndarray,
                       id2_pred: np.ndarray) -> ConsistencyReport:
    """Agreement between binary match predictions and ID-equality.

    All arrays are per-pair predictions of equal length (as produced by
    :meth:`repro.models.trainer.Trainer.predict_all`).
    """
    em_pred = np.asarray(em_pred).astype(bool)
    same_id = np.asarray(id1_pred) == np.asarray(id2_pred)
    if em_pred.shape != same_id.shape:
        raise ValueError(
            f"shape mismatch: {em_pred.shape} vs {same_id.shape}"
        )
    total = len(em_pred)
    if total == 0:
        return ConsistencyReport(1.0, 0, 0, 0)
    agree = em_pred == same_id
    return ConsistencyReport(
        agreement_rate=float(agree.mean()),
        match_but_different_ids=int((em_pred & ~same_id).sum()),
        nonmatch_but_same_ids=int((~em_pred & same_id).sum()),
        total=total,
    )


def id_equality_as_matcher_f1(labels: np.ndarray, id1_pred: np.ndarray,
                              id2_pred: np.ndarray) -> float:
    """F1 of using *ID equality alone* as the match decision.

    If the auxiliary heads were perfect, this would equal 1.0 — it
    measures how much matching signal the auxiliary task alone carries
    (high for EMBA, low for JointBERT per the paper's Table 3).
    """
    from repro.eval.metrics import binary_f1

    same_id = (np.asarray(id1_pred) == np.asarray(id2_pred)).astype(int)
    return binary_f1(np.asarray(labels).astype(int), same_id)
