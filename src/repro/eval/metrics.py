"""Classification metrics.

Binary precision/recall/F1 for the main EM task and accuracy / micro-F1 /
macro-F1 for the multi-class entity-ID tasks (the paper reports accuracy
per task plus a micro-F1 pooled over both ID predictions).
"""

from __future__ import annotations

import numpy as np


def confusion(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[int, int, int, int]:
    """Binary confusion counts (tp, fp, fn, tn) with 1 as the positive class."""
    y_true = np.asarray(y_true).astype(int)
    y_pred = np.asarray(y_pred).astype(int)
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    tp = int(((y_true == 1) & (y_pred == 1)).sum())
    fp = int(((y_true == 0) & (y_pred == 1)).sum())
    fn = int(((y_true == 1) & (y_pred == 0)).sum())
    tn = int(((y_true == 0) & (y_pred == 0)).sum())
    return tp, fp, fn, tn


def precision_recall_f1(y_true: np.ndarray, y_pred: np.ndarray
                        ) -> tuple[float, float, float]:
    """Binary precision, recall, F1 (zero when undefined)."""
    tp, fp, fn, _ = confusion(y_true, y_pred)
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    f1 = 2 * precision * recall / (precision + recall) if precision + recall else 0.0
    return precision, recall, f1


def binary_f1(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """F1 of the positive (match) class — the paper's headline metric."""
    return precision_recall_f1(y_true, y_pred)[2]


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    if y_true.size == 0:
        return 0.0
    return float((y_true == y_pred).mean())


def micro_f1(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Micro-averaged F1 for single-label multi-class predictions.

    With one label per example, micro precision == micro recall ==
    accuracy, so micro-F1 equals accuracy; it is kept as a distinct
    function to mirror the paper's reporting (their Tables 3/5 pool the
    two ID tasks before micro-averaging).
    """
    return accuracy(y_true, y_pred)


def macro_f1(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Macro-averaged F1 over the classes present in ``y_true``."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    classes = np.unique(y_true)
    if classes.size == 0:
        return 0.0
    scores = []
    for c in classes:
        tp = int(((y_true == c) & (y_pred == c)).sum())
        fp = int(((y_true != c) & (y_pred == c)).sum())
        fn = int(((y_true == c) & (y_pred != c)).sum())
        precision = tp / (tp + fp) if tp + fp else 0.0
        recall = tp / (tp + fn) if tp + fn else 0.0
        scores.append(
            2 * precision * recall / (precision + recall) if precision + recall else 0.0
        )
    return float(np.mean(scores))
