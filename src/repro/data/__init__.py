"""repro.data — entity-matching datasets and loading machinery.

Provides the record/pair schema, record serialization (plain and
DITTO-style ``[COL]/[VAL]``), cluster-ID assignment via transitive
closure, the LRID imbalance metric and positive-subsampling used by the
paper's imbalance study, train/valid/test splitting, pair encoding and
batching, and a registry of synthetic benchmark datasets mirroring the
paper's 7 dataset families (22 configurations).
"""

from repro.data.clustering import assign_cluster_ids
from repro.data.export import (
    load_dataset_csv,
    load_pairs_csv,
    save_dataset_csv,
    save_pairs_csv,
)
from repro.data.imbalance import lrid, subsample_positives
from repro.data.loader import Batch, EncodedPair, PairEncoder, iter_batches
from repro.data.registry import DATASET_NAMES, WDC_SIZES, dataset_summary, load_dataset
from repro.data.schema import EMDataset, EntityPair, EntityRecord
from repro.data.serialize import serialize_pair_text, serialize_record
from repro.data.splits import train_valid_test_split

__all__ = [
    "Batch",
    "DATASET_NAMES",
    "EMDataset",
    "EncodedPair",
    "EntityPair",
    "EntityRecord",
    "PairEncoder",
    "WDC_SIZES",
    "assign_cluster_ids",
    "dataset_summary",
    "iter_batches",
    "load_dataset",
    "load_dataset_csv",
    "load_pairs_csv",
    "lrid",
    "serialize_pair_text",
    "save_dataset_csv",
    "save_pairs_csv",
    "serialize_record",
    "subsample_positives",
    "train_valid_test_split",
]
