"""Record serialization into model input text.

Three styles:

- ``plain``: attribute values concatenated into a single string (the
  input format used by BERT, RoBERTa, JointBERT, and EMBA).
- ``ditto``: DITTO's structural tags — ``[COL] name [VAL] value`` per
  attribute — which the paper cites as a fix for semantic discontinuity.
- ``described``: natural-language attribute descriptors
  (``title is ... . brand is ... .``) — the paper's Sec. 5 preliminary
  finding that "introducing description structures instead of relying on
  special tokens (e.g., [COL]) can improve the robustness and
  performance of the EM model".
"""

from __future__ import annotations

from repro.data.schema import EntityPair, EntityRecord
from repro.text.special_tokens import COL_TOKEN, VAL_TOKEN

STYLES = ("plain", "ditto", "described")


def serialize_record(record: EntityRecord, style: str = "plain") -> str:
    """Render a record's description as one string."""
    if style == "plain":
        return record.text()
    if style == "ditto":
        parts: list[str] = []
        for name, value in record.attributes:
            if not value:
                continue
            parts.extend([COL_TOKEN, name, VAL_TOKEN, value])
        return " ".join(parts)
    if style == "described":
        parts = [
            f"{name} is {value} ."
            for name, value in record.attributes if value
        ]
        return " ".join(parts)
    raise ValueError(f"unknown serialization style {style!r}; expected one of {STYLES}")


def serialize_pair_text(pair: EntityPair, style: str = "plain") -> tuple[str, str]:
    """Serialized text of both records (tokenizer adds [CLS]/[SEP] later)."""
    return (
        serialize_record(pair.record1, style=style),
        serialize_record(pair.record2, style=style),
    )
