"""Core data types: entity records, labeled pairs, and datasets.

Records follow the paper's problem definition (Sec. 3.1): a record has a
description made of attribute values and a user-specified *entity ID*
(the auxiliary multi-class label — a product cluster, venue, category,
etc.).  The two records of a pair are *not* required to share a schema.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class EntityRecord:
    """One entity description.

    Attributes
    ----------
    attributes:
        Ordered attribute name -> value mapping (the description
        ``D_e = {D_e^1 ... D_e^m}``).
    entity_id:
        The auxiliary-task class label (``ID_e``), e.g. the product
        cluster, venue, brand, or publisher.  ``None`` when unlabeled.
    source:
        Which of the two data sources the record came from.
    """

    attributes: tuple[tuple[str, str], ...]
    entity_id: str | None = None
    source: str = ""

    @classmethod
    def from_dict(cls, attributes: dict[str, str], entity_id: str | None = None,
                  source: str = "") -> "EntityRecord":
        return cls(tuple(attributes.items()), entity_id=entity_id, source=source)

    def attribute_dict(self) -> dict[str, str]:
        return dict(self.attributes)

    def text(self) -> str:
        """The concatenated attribute values (the paper's plain input)."""
        return " ".join(v for _, v in self.attributes if v)


@dataclass(frozen=True)
class EntityPair:
    """A labeled candidate pair for the main EM binary task."""

    record1: EntityRecord
    record2: EntityRecord
    label: int  # 1 = match, 0 = non-match

    def __post_init__(self):
        if self.label not in (0, 1):
            raise ValueError(f"pair label must be 0 or 1, got {self.label}")


@dataclass
class EMDataset:
    """A benchmark dataset: split pairs plus the entity-ID class space.

    ``id_classes`` maps every entity-ID string appearing in the data to a
    contiguous class index used by the auxiliary softmax heads.
    """

    name: str
    train: list[EntityPair]
    valid: list[EntityPair]
    test: list[EntityPair]
    id_classes: dict[str, int] = field(default_factory=dict)
    metadata: dict = field(default_factory=dict)

    @property
    def num_id_classes(self) -> int:
        return len(self.id_classes)

    def id_index(self, entity_id: str | None) -> int:
        """Class index for an entity-ID label (unknown labels map to 0)."""
        if entity_id is None:
            return 0
        return self.id_classes.get(entity_id, 0)

    def all_pairs(self) -> list[EntityPair]:
        return self.train + self.valid + self.test

    def positive_negative_counts(self, split: str = "train") -> tuple[int, int]:
        pairs = getattr(self, split)
        positives = sum(p.label for p in pairs)
        return positives, len(pairs) - positives

    @staticmethod
    def build_id_classes(pairs: list[EntityPair]) -> dict[str, int]:
        """Contiguous class indices over every entity-ID seen in ``pairs``."""
        labels = sorted(
            {r.entity_id for p in pairs for r in (p.record1, p.record2)
             if r.entity_id is not None}
        )
        return {label: i for i, label in enumerate(labels)}
