"""CSV import/export for EM datasets.

Real deployments keep candidate pairs in flat files (the
DeepMatcher/Magellan CSV convention: ``left_*`` / ``right_*`` attribute
columns plus a ``label`` column).  These helpers write an
:class:`~repro.data.schema.EMDataset` to that layout and read it back,
so externally-produced benchmarks can run through the library unchanged.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.data.schema import EMDataset, EntityPair, EntityRecord

_META_COLUMNS = ("label", "left_entity_id", "right_entity_id",
                 "left_source", "right_source")


def _attribute_names(pairs: list[EntityPair]) -> tuple[list[str], list[str]]:
    left: list[str] = []
    right: list[str] = []
    for pair in pairs:
        for name, _ in pair.record1.attributes:
            if name not in left:
                left.append(name)
        for name, _ in pair.record2.attributes:
            if name not in right:
                right.append(name)
    return left, right


def save_pairs_csv(pairs: list[EntityPair], path: str | Path) -> None:
    """Write labeled pairs as ``left_*``/``right_*`` columns plus label."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    left_attrs, right_attrs = _attribute_names(pairs)
    header = (list(_META_COLUMNS)
              + [f"left_{a}" for a in left_attrs]
              + [f"right_{a}" for a in right_attrs])
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        for pair in pairs:
            d1 = pair.record1.attribute_dict()
            d2 = pair.record2.attribute_dict()
            writer.writerow(
                [pair.label,
                 pair.record1.entity_id or "", pair.record2.entity_id or "",
                 pair.record1.source, pair.record2.source]
                + [d1.get(a, "") for a in left_attrs]
                + [d2.get(a, "") for a in right_attrs]
            )


def load_pairs_csv(path: str | Path) -> list[EntityPair]:
    """Inverse of :func:`save_pairs_csv`."""
    path = Path(path)
    pairs: list[EntityPair] = []
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or "label" not in reader.fieldnames:
            raise ValueError(f"{path} is not a pairs CSV (missing 'label' column)")
        left_attrs = [c.removeprefix("left_") for c in reader.fieldnames
                      if c.startswith("left_") and c not in _META_COLUMNS]
        right_attrs = [c.removeprefix("right_") for c in reader.fieldnames
                       if c.startswith("right_") and c not in _META_COLUMNS]
        for row in reader:
            record1 = EntityRecord.from_dict(
                {a: row[f"left_{a}"] for a in left_attrs},
                entity_id=row["left_entity_id"] or None,
                source=row["left_source"],
            )
            record2 = EntityRecord.from_dict(
                {a: row[f"right_{a}"] for a in right_attrs},
                entity_id=row["right_entity_id"] or None,
                source=row["right_source"],
            )
            pairs.append(EntityPair(record1, record2, int(row["label"])))
    return pairs


def save_dataset_csv(dataset: EMDataset, directory: str | Path) -> None:
    """Write train/valid/test splits as three CSV files in ``directory``."""
    directory = Path(directory)
    for split in ("train", "valid", "test"):
        save_pairs_csv(getattr(dataset, split), directory / f"{split}.csv")


def load_dataset_csv(name: str, directory: str | Path) -> EMDataset:
    """Read a dataset written by :func:`save_dataset_csv`."""
    directory = Path(directory)
    dataset = EMDataset(
        name=name,
        train=load_pairs_csv(directory / "train.csv"),
        valid=load_pairs_csv(directory / "valid.csv"),
        test=load_pairs_csv(directory / "test.csv"),
    )
    dataset.id_classes = EMDataset.build_id_classes(dataset.all_pairs())
    return dataset
