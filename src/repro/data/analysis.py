"""Dataset profiling utilities.

EM practitioners profile candidate sets before modelling: attribute
fill rates (how often each attribute is non-empty), the token-overlap
(Jaccard) distributions of matching vs non-matching pairs — whose
separation bounds how well *any* token-based matcher can do — and the
vocabulary overlap between the two sources (schema/value heterogeneity).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.data.schema import EntityPair
from repro.text.normalize import basic_tokenize


@dataclass
class OverlapProfile:
    """Token-Jaccard statistics of match vs non-match pairs."""

    match_mean: float
    match_std: float
    nonmatch_mean: float
    nonmatch_std: float

    @property
    def separation(self) -> float:
        """Gap between the class means (higher = easier dataset)."""
        return self.match_mean - self.nonmatch_mean


def attribute_fill_rates(pairs: Sequence[EntityPair]) -> dict[str, float]:
    """Fraction of records (both sides pooled) with a non-empty value
    per attribute name."""
    counts: dict[str, int] = defaultdict(int)
    filled: dict[str, int] = defaultdict(int)
    for pair in pairs:
        for record in (pair.record1, pair.record2):
            for name, value in record.attributes:
                counts[name] += 1
                if value:
                    filled[name] += 1
    return {name: filled[name] / counts[name] for name in counts}


def token_jaccard(text_a: str, text_b: str) -> float:
    """Jaccard similarity of the two texts' token sets."""
    tokens_a = set(basic_tokenize(text_a))
    tokens_b = set(basic_tokenize(text_b))
    union = tokens_a | tokens_b
    if not union:
        return 0.0
    return len(tokens_a & tokens_b) / len(union)


def overlap_profile(pairs: Sequence[EntityPair]) -> OverlapProfile:
    """Per-class token-Jaccard means/stds across a pair collection."""
    match_scores, nonmatch_scores = [], []
    for pair in pairs:
        score = token_jaccard(pair.record1.text(), pair.record2.text())
        (match_scores if pair.label == 1 else nonmatch_scores).append(score)

    def stats(values: list[float]) -> tuple[float, float]:
        if not values:
            return 0.0, 0.0
        arr = np.asarray(values)
        return float(arr.mean()), float(arr.std())

    m_mean, m_std = stats(match_scores)
    n_mean, n_std = stats(nonmatch_scores)
    return OverlapProfile(match_mean=m_mean, match_std=m_std,
                          nonmatch_mean=n_mean, nonmatch_std=n_std)


def source_vocabulary_overlap(pairs: Sequence[EntityPair]) -> float:
    """Jaccard overlap between the two sources' full vocabularies.

    Low overlap signals schema/value heterogeneity (abt-buy-style);
    high overlap signals near-duplicate sources (WDC-style).
    """
    vocab: dict[str, Counter] = defaultdict(Counter)
    for pair in pairs:
        for record, side in ((pair.record1, 0), (pair.record2, 1)):
            vocab[f"side{side}"].update(basic_tokenize(record.text()))
    left = set(vocab["side0"])
    right = set(vocab["side1"])
    union = left | right
    if not union:
        return 0.0
    return len(left & right) / len(union)


def profile_dataset(pairs: Sequence[EntityPair]) -> dict:
    """One-call profile: fill rates, overlap stats, source vocabulary."""
    profile = overlap_profile(pairs)
    return {
        "fill_rates": attribute_fill_rates(pairs),
        "match_jaccard_mean": profile.match_mean,
        "nonmatch_jaccard_mean": profile.nonmatch_mean,
        "jaccard_separation": profile.separation,
        "source_vocabulary_overlap": source_vocabulary_overlap(pairs),
        "num_pairs": len(pairs),
    }
