"""Dataset registry: name-based access to all 22 benchmark configurations.

``load_dataset("wdc_computers", size="medium")`` mirrors the paper's
dataset grid; the six non-WDC names take no size.  Loaded datasets are
memoized per (name, size, seed) because generation involves transitive
closure and deduplicated pair sampling.
"""

from __future__ import annotations

from functools import lru_cache
from collections import Counter

from repro.data.generators.magellan import (
    generate_baby_products,
    generate_bikes,
    generate_books,
)
from repro.data.generators.structured import (
    generate_abt_buy,
    generate_companies,
    generate_dblp_scholar,
)
from repro.data.generators.wdc import WDC_CATEGORIES, WDC_SIZES, generate_wdc
from repro.data.imbalance import entity_id_lrid
from repro.data.schema import EMDataset

DATASET_NAMES = tuple(
    [f"wdc_{c}" for c in WDC_CATEGORIES]
    + ["abt_buy", "dblp_scholar", "companies", "baby_products", "bikes", "books"]
)

_FLAT_GENERATORS = {
    "abt_buy": generate_abt_buy,
    "dblp_scholar": generate_dblp_scholar,
    "companies": generate_companies,
    "baby_products": generate_baby_products,
    "bikes": generate_bikes,
    "books": generate_books,
}


@lru_cache(maxsize=64)
def load_dataset(name: str, size: str = "default", seed: int = 0) -> EMDataset:
    """Load (generate) a benchmark dataset by name.

    Parameters
    ----------
    name:
        One of :data:`DATASET_NAMES`.
    size:
        For WDC datasets, one of ``small/medium/large/xlarge``; the other
        datasets only accept ``"default"``.
    seed:
        Generation seed (datasets with different seeds are disjoint
        samples from the same synthetic world).
    """
    if name.startswith("wdc_"):
        category = name.removeprefix("wdc_")
        if size == "default":
            size = "medium"
        return generate_wdc(category, size=size, seed=seed)
    if name in _FLAT_GENERATORS:
        if size != "default":
            raise ValueError(f"dataset {name!r} has no size variants (got {size!r})")
        return _FLAT_GENERATORS[name](seed=seed)
    raise KeyError(f"unknown dataset {name!r}; expected one of {DATASET_NAMES}")


def dataset_summary(dataset: EMDataset) -> dict:
    """Table 1 row: pair counts, LRID, class count, test-set size."""
    pos, neg = dataset.positive_negative_counts("train")
    id_counts = Counter(
        r.entity_id for p in dataset.all_pairs() for r in (p.record1, p.record2)
        if r.entity_id is not None
    )
    return {
        "dataset": dataset.name,
        "pos_pairs": pos,
        "neg_pairs": neg,
        "lrid": entity_id_lrid(dataset.all_pairs()),
        "num_classes": len(id_counts),
        "test_size": len(dataset.test),
    }


__all__ = ["DATASET_NAMES", "WDC_SIZES", "dataset_summary", "load_dataset"]
