"""Transitive-closure cluster-ID assignment.

For datasets that ship only match/non-match pair labels (abt-buy,
dblp-scholar, companies), the paper derives auxiliary entity-ID labels by
taking the transitive closure of the match relation: if (A, B) and (B, C)
are matches, then {A, B, C} form one cluster and share a unique cluster
identifier.  We build the match graph with networkx and label connected
components.
"""

from __future__ import annotations

import networkx as nx

from repro.data.schema import EntityPair, EntityRecord


def _record_key(record: EntityRecord) -> tuple:
    """Hashable identity for a record (records are frozen dataclasses)."""
    return (record.source, record.attributes)


def assign_cluster_ids(pairs: list[EntityPair], prefix: str = "cluster") -> list[EntityPair]:
    """Return new pairs whose records carry transitive-closure cluster IDs.

    Every record (from matching *and* non-matching pairs) becomes a graph
    node; edges connect records of pairs labeled as matches.  Each
    connected component gets one identifier, so singletons — records never
    matched to anything — each form their own class, reproducing the
    sparse auxiliary classes the paper observes on abt-buy and companies.
    """
    graph = nx.Graph()
    for pair in pairs:
        graph.add_node(_record_key(pair.record1))
        graph.add_node(_record_key(pair.record2))
        if pair.label == 1:
            graph.add_edge(_record_key(pair.record1), _record_key(pair.record2))

    cluster_of: dict[tuple, str] = {}
    for i, component in enumerate(sorted(nx.connected_components(graph), key=sorted)):
        label = f"{prefix}-{i}"
        for key in component:
            cluster_of[key] = label

    def relabel(record: EntityRecord) -> EntityRecord:
        return EntityRecord(
            attributes=record.attributes,
            entity_id=cluster_of[_record_key(record)],
            source=record.source,
        )

    return [
        EntityPair(relabel(p.record1), relabel(p.record2), p.label) for p in pairs
    ]
