"""Shared machinery for the synthetic dataset generators.

The generators simulate the regime that drives the paper's analysis: two
descriptions of the same real-world entity share most of their tokens
but differ in phrasing and noise, while descriptions of *different*
entities from the same domain can also share many tokens (same brand,
same specs) — so correct matching hinges on a small subset of
discriminative tokens (model numbers, brand names), exactly the paper's
Section 4.7 case study.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.schema import EntityPair, EntityRecord

CONSONANTS = "bcdfghjklmnpqrstvwz"
VOWELS = "aeiou"
DIGITS = "0123456789"
LETTERS = "abcdefghijklmnopqrstuvwxyz"


def random_word(rng: np.random.Generator, syllables: int = 2) -> str:
    """Pronounceable random word (for brand and vocabulary pools)."""
    parts = []
    for _ in range(syllables):
        parts.append(rng.choice(list(CONSONANTS)))
        parts.append(rng.choice(list(VOWELS)))
    if rng.random() < 0.5:
        parts.append(rng.choice(list(CONSONANTS)))
    return "".join(parts)


def model_code(rng: np.random.Generator, blocks: tuple[int, ...] = (4, 4)) -> str:
    """Alphanumeric model number like ``sdcfh-004g`` (split by WordPiece)."""
    alphabet = list(LETTERS + DIGITS)
    pieces = ["".join(rng.choice(alphabet, size=n)) for n in blocks]
    return "-".join(pieces)


def numeric_spec(rng: np.random.Generator, values: list[int], unit: str) -> str:
    """A numeric spec token such as ``4gb`` or ``520mb``."""
    return f"{rng.choice(values)}{unit}"


# ----------------------------------------------------------------------
# Noise model: how two offers for the same entity differ
# ----------------------------------------------------------------------

def typo(word: str, rng: np.random.Generator) -> str:
    """Swap two adjacent characters (extraction-noise typo)."""
    if len(word) < 3:
        return word
    i = int(rng.integers(0, len(word) - 1))
    chars = list(word)
    chars[i], chars[i + 1] = chars[i + 1], chars[i]
    return "".join(chars)


def corrupt_tokens(tokens: list[str], rng: np.random.Generator,
                   drop_prob: float = 0.12, typo_prob: float = 0.05,
                   shuffle_prob: float = 0.15) -> list[str]:
    """Apply the offer-level noise model to a token list.

    Tokens are independently dropped or typo-corrupted; occasionally a
    local swap reorders neighbours (web-extraction artifacts).  At least
    one token always survives.
    """
    out: list[str] = []
    for token in tokens:
        roll = rng.random()
        if roll < drop_prob:
            continue
        if roll < drop_prob + typo_prob:
            out.append(typo(token, rng))
        else:
            out.append(token)
    if not out:
        out = [tokens[0]]
    if len(out) > 2 and rng.random() < shuffle_prob:
        i = int(rng.integers(0, len(out) - 1))
        out[i], out[i + 1] = out[i + 1], out[i]
    return out


@dataclass
class CatalogEntity:
    """One real-world entity with its canonical attribute values."""

    entity_id: str
    attributes: dict[str, str]
    # Group label usable as an auxiliary class (brand, category, venue...).
    group: str = ""


@dataclass
class OfferPool:
    """Noisy per-source descriptions for every catalog entity."""

    offers: dict[str, list[EntityRecord]] = field(default_factory=dict)

    def add(self, entity_id: str, record: EntityRecord) -> None:
        self.offers.setdefault(entity_id, []).append(record)

    def entity_ids(self) -> list[str]:
        return list(self.offers)


def sample_pairs(pool: OfferPool, num_positives: int, num_negatives: int,
                 rng: np.random.Generator,
                 hard_negative_groups: dict[str, str] | None = None,
                 hard_fraction: float = 0.6,
                 forbidden: set[tuple] | None = None) -> list[EntityPair]:
    """Sample distinct labeled pairs from an offer pool.

    Positives pair two distinct offers of the same entity.  Negatives pair
    offers of different entities; a ``hard_fraction`` of them are drawn
    from the same group (same brand / category), which is what makes the
    matching decision depend on the discriminative tokens.  Sampled pairs
    are deduplicated (unordered), and pairs whose keys appear in
    ``forbidden`` are skipped — callers use this to keep the train,
    validation, and test splits non-overlapping while still covering the
    same entities (as in the WDC benchmark).
    """
    ids = pool.entity_ids()
    if len(ids) < 2:
        raise ValueError("need at least two entities to sample negatives")

    eligible = [e for e in ids if len(pool.offers[e]) >= 2]
    if not eligible:
        raise ValueError("no entity has two offers; cannot sample positives")

    seen: set[tuple] = set(forbidden) if forbidden else set()

    def pair_key(a: EntityRecord, b: EntityRecord) -> tuple:
        ka = (a.source, a.attributes)
        kb = (b.source, b.attributes)
        return (ka, kb) if ka <= kb else (kb, ka)

    pairs: list[EntityPair] = []
    attempts = 0
    max_attempts = 50 * (num_positives + 1)
    while sum(p.label for p in pairs) < num_positives and attempts < max_attempts:
        attempts += 1
        entity = eligible[int(rng.integers(0, len(eligible)))]
        offers = pool.offers[entity]
        i, j = rng.choice(len(offers), size=2, replace=False)
        key = pair_key(offers[i], offers[j])
        if key in seen:
            continue
        seen.add(key)
        pairs.append(EntityPair(offers[i], offers[j], 1))

    by_group: dict[str, list[str]] = {}
    if hard_negative_groups:
        for entity_id, group in hard_negative_groups.items():
            by_group.setdefault(group, []).append(entity_id)

    negatives = 0
    attempts = 0
    max_attempts = 50 * (num_negatives + 1)
    while negatives < num_negatives and attempts < max_attempts:
        attempts += 1
        first = ids[int(rng.integers(0, len(ids)))]
        second = None
        if hard_negative_groups and rng.random() < hard_fraction:
            group = hard_negative_groups.get(first)
            candidates = [e for e in by_group.get(group, []) if e != first]
            if candidates:
                second = candidates[int(rng.integers(0, len(candidates)))]
        if second is None:
            while True:
                second = ids[int(rng.integers(0, len(ids)))]
                if second != first:
                    break
        offers1 = pool.offers[first]
        offers2 = pool.offers[second]
        rec1 = offers1[int(rng.integers(0, len(offers1)))]
        rec2 = offers2[int(rng.integers(0, len(offers2)))]
        key = pair_key(rec1, rec2)
        if key in seen:
            continue
        seen.add(key)
        pairs.append(EntityPair(rec1, rec2, 0))
        negatives += 1

    order = rng.permutation(len(pairs))
    return [pairs[i] for i in order]


def pair_keys(pairs: list[EntityPair]) -> set[tuple]:
    """Unordered dedupe keys for already-sampled pairs (for ``forbidden``)."""
    keys: set[tuple] = set()
    for p in pairs:
        ka = (p.record1.source, p.record1.attributes)
        kb = (p.record2.source, p.record2.attributes)
        keys.add((ka, kb) if ka <= kb else (kb, ka))
    return keys
