"""Synthetic abt-buy, dblp-scholar, and companies datasets.

Each generator reproduces the property of its real counterpart that the
paper's analysis leans on:

- **abt-buy**: two product sources with very different verbosity; the
  transitive-closure entity-ID classes are sparse (most clusters have
  only a couple of descriptions), yielding a moderately high LRID and a
  hard auxiliary task.
- **dblp-scholar**: bibliographic records; the auxiliary label is
  venue+year, a *small but extremely imbalanced* class space (the paper's
  highest LRID, 4.548) — the regime where a badly designed auxiliary task
  hurts the main EM task.
- **companies**: a large dataset whose auxiliary class space is enormous
  (one class per company cluster, most of them singletons), so auxiliary
  accuracy is near zero for [CLS]-based models.
"""

from __future__ import annotations

import numpy as np

from repro.data.clustering import assign_cluster_ids
from repro.data.generators.base import (
    OfferPool,
    corrupt_tokens,
    model_code,
    random_word,
    sample_pairs,
)
from repro.data.schema import EMDataset, EntityPair, EntityRecord


def _split_fixed(pairs: list[EntityPair], rng: np.random.Generator,
                 valid_frac: float = 0.15, test_frac: float = 0.2,
                 ) -> tuple[list[EntityPair], list[EntityPair], list[EntityPair]]:
    order = rng.permutation(len(pairs))
    shuffled = [pairs[i] for i in order]
    n_test = int(len(pairs) * test_frac)
    n_valid = int(len(pairs) * valid_frac)
    return shuffled[n_test + n_valid:], shuffled[n_test:n_test + n_valid], shuffled[:n_test]


# ----------------------------------------------------------------------
# abt-buy
# ----------------------------------------------------------------------

def generate_abt_buy(seed: int = 0, num_products: int = 60,
                     num_positives: int = 80, num_negatives: int = 320) -> EMDataset:
    """Products described tersely by one source and verbosely by the other."""
    rng = np.random.default_rng(seed * 104729 + 11)
    adjectives = ["wireless", "digital", "portable", "compact", "premium",
                  "professional", "universal", "heavy duty"]
    nouns = ["speaker", "headphones", "blender", "vacuum", "router",
             "monitor", "keyboard", "microwave", "toaster", "dehumidifier"]
    brands = [random_word(rng, 2) for _ in range(10)]

    pool = OfferPool()
    groups: dict[str, str] = {}
    for i in range(num_products):
        brand = brands[int(rng.integers(0, len(brands)))]
        noun = nouns[int(rng.integers(0, len(nouns)))]
        adj = adjectives[int(rng.integers(0, len(adjectives)))]
        code = model_code(rng, blocks=(3, 3))
        price = f"${rng.integers(20, 900)}.{rng.integers(10, 99)}"
        entity_id = f"abtbuy-{i}"
        groups[entity_id] = noun

        # Abt: long marketing description (brand/code kept verbatim in
        # the name so the discriminative evidence survives the noise, as
        # in the real abt catalogue).
        abt_tokens = [adj, "featuring", "easy", "setup", "and", "one",
                      "year", "warranty", price]
        pool.add(entity_id, EntityRecord.from_dict(
            {"name": f"{brand} {adj} {noun} {code}",
             "description": " ".join(corrupt_tokens(abt_tokens, rng, drop_prob=0.1)),
             "price": price},
            source="abt",
        ))
        # Buy: terse title-only listing.
        pool.add(entity_id, EntityRecord.from_dict(
            {"name": f"{brand} {noun} {code}",
             "description": adj, "price": price if rng.random() > 0.4 else ""},
            source="buy",
        ))
        # A few products get an extra listing so some clusters have 3 members.
        if rng.random() < 0.25:
            pool.add(entity_id, EntityRecord.from_dict(
                {"name": f"{brand} {noun} {code} refurbished",
                 "description": " ".join(corrupt_tokens(abt_tokens[:6], rng)),
                 "price": ""},
                source="buy",
            ))

    pairs = sample_pairs(pool, num_positives, num_negatives, rng, groups)
    # Real abt-buy ships only match labels; entity IDs come from the
    # transitive closure of the match relation.
    pairs = assign_cluster_ids(pairs, prefix="abtbuy-cluster")
    train, valid, test = _split_fixed(pairs, rng)
    dataset = EMDataset(
        name="abt_buy", train=train, valid=valid, test=test,
        metadata={"family": "structured"},
    )
    dataset.id_classes = EMDataset.build_id_classes(dataset.all_pairs())
    return dataset


# ----------------------------------------------------------------------
# dblp-scholar
# ----------------------------------------------------------------------

_VENUES = ["sigmod", "vldb", "icde", "edbt", "kdd", "icml", "acl", "www",
           "cikm", "pods", "tods", "sigir"]
_TOPICS = ["entity", "matching", "query", "optimization", "learning",
           "index", "stream", "graph", "transaction", "schema", "privacy",
           "parallel", "crowdsourcing", "embedding"]


def generate_dblp_scholar(seed: int = 0, num_papers: int = 90,
                          num_positives: int = 80, num_negatives: int = 350) -> EMDataset:
    """Bibliographic records with venue(+year) as a highly imbalanced aux label.

    Venue frequencies follow a steep Zipf distribution so a handful of
    venue-year classes dominate — reproducing dblp-scholar's LRID of 4.5,
    the largest in the paper's Table 1.
    """
    rng = np.random.default_rng(seed * 104729 + 23)
    venue_weights = 1.0 / np.arange(1, len(_VENUES) + 1) ** 1.6
    venue_weights /= venue_weights.sum()

    pool = OfferPool()
    groups: dict[str, str] = {}
    for i in range(num_papers):
        venue = str(rng.choice(_VENUES, p=venue_weights))
        year = str(rng.integers(1995, 2005))
        words = list(rng.choice(_TOPICS, size=4, replace=False))
        title = " ".join(words)
        authors = " ".join(random_word(rng, 2) for _ in range(2))
        aux = f"{venue}-{year}"
        entity_id = f"paper-{i}"
        groups[entity_id] = venue

        # DBLP: clean, complete record.
        pool.add(entity_id, EntityRecord.from_dict(
            {"title": title, "authors": authors, "venue": venue, "year": year},
            entity_id=aux, source="dblp",
        ))
        # Scholar: noisy, sometimes missing venue/year, abbreviated authors.
        noisy_title = " ".join(corrupt_tokens(words, rng, drop_prob=0.1, typo_prob=0.1))
        pool.add(entity_id, EntityRecord.from_dict(
            {"title": noisy_title,
             "authors": authors.split()[0],
             "venue": venue if rng.random() > 0.3 else "",
             "year": year if rng.random() > 0.3 else ""},
            entity_id=aux, source="scholar",
        ))
        if rng.random() < 0.3:
            pool.add(entity_id, EntityRecord.from_dict(
                {"title": " ".join(corrupt_tokens(words, rng, drop_prob=0.2)),
                 "authors": authors, "venue": venue, "year": ""},
                entity_id=aux, source="scholar",
            ))

    pairs = sample_pairs(pool, num_positives, num_negatives, rng, groups)
    train, valid, test = _split_fixed(pairs, rng)
    dataset = EMDataset(
        name="dblp_scholar", train=train, valid=valid, test=test,
        metadata={"family": "structured", "aux_label": "venue+year"},
    )
    dataset.id_classes = EMDataset.build_id_classes(dataset.all_pairs())
    return dataset


# ----------------------------------------------------------------------
# companies
# ----------------------------------------------------------------------

_SECTORS = ["software", "logistics", "pharma", "retail", "energy", "media",
            "consulting", "insurance", "robotics", "analytics"]
_SUFFIXES = ["inc", "ltd", "corp", "group", "holdings", "llc"]


def generate_companies(seed: int = 0, num_companies: int = 220,
                       num_positives: int = 120, num_negatives: int = 480) -> EMDataset:
    """Company descriptions with an enormous singleton-heavy aux class space."""
    rng = np.random.default_rng(seed * 104729 + 37)
    cities = [random_word(rng, 3) for _ in range(14)]

    pool = OfferPool()
    groups: dict[str, str] = {}
    for i in range(num_companies):
        name = f"{random_word(rng, 2)} {random_word(rng, 2)}"
        sector = _SECTORS[int(rng.integers(0, len(_SECTORS)))]
        suffix = _SUFFIXES[int(rng.integers(0, len(_SUFFIXES)))]
        city = cities[int(rng.integers(0, len(cities)))]
        founded = str(rng.integers(1950, 2015))
        entity_id = f"company-{i}"
        groups[entity_id] = sector

        base = [name, suffix, sector, "company", "based", "in", city,
                "founded", founded]
        pool.add(entity_id, EntityRecord.from_dict(
            {"name": f"{name} {suffix}",
             "content": " ".join(corrupt_tokens(base, rng, drop_prob=0.1))},
            source="web",
        ))
        pool.add(entity_id, EntityRecord.from_dict(
            {"name": name,
             "content": " ".join(corrupt_tokens(base + ["leading", "provider"],
                                                rng, drop_prob=0.25))},
            source="wiki",
        ))

    pairs = sample_pairs(pool, num_positives, num_negatives, rng, groups)
    pairs = assign_cluster_ids(pairs, prefix="company-cluster")
    train, valid, test = _split_fixed(pairs, rng)
    dataset = EMDataset(
        name="companies", train=train, valid=valid, test=test,
        metadata={"family": "structured"},
    )
    dataset.id_classes = EMDataset.build_id_classes(dataset.all_pairs())
    return dataset
