"""Synthetic benchmark-dataset generators.

Each generator reproduces the *structure* of one of the paper's dataset
families: attribute schemas, entity-ID class spaces and their imbalance
(LRID), the number of offers per entity, the hard-negative regime
(matches decided by small token subsets such as brand + model number
amid large shared context), and the paper's positive/negative pair
ratios scaled down to CPU-trainable sizes.
"""

from repro.data.generators.magellan import (
    generate_baby_products,
    generate_bikes,
    generate_books,
)
from repro.data.generators.structured import (
    generate_abt_buy,
    generate_companies,
    generate_dblp_scholar,
)
from repro.data.generators.wdc import WDC_CATEGORIES, generate_wdc

__all__ = [
    "WDC_CATEGORIES",
    "generate_abt_buy",
    "generate_baby_products",
    "generate_bikes",
    "generate_books",
    "generate_companies",
    "generate_dblp_scholar",
    "generate_wdc",
]
