"""Synthetic Magellan datasets: baby products, bikes, books.

These are the paper's smallest benchmarks (a few hundred pairs).  The
auxiliary entity-ID labels follow the paper's choices: *category* for
baby products, *brand* for bikes, and *publisher* for books.  Books'
publisher space is intentionally sparse (the paper's has 2882 classes for
~400 pairs) so the auxiliary task is badly underdetermined — the regime
where multi-task learning can hurt.
"""

from __future__ import annotations

import numpy as np

from repro.data.generators.base import (
    OfferPool,
    corrupt_tokens,
    model_code,
    random_word,
    sample_pairs,
)
from repro.data.generators.structured import _split_fixed
from repro.data.schema import EMDataset, EntityRecord


def generate_baby_products(seed: int = 0, num_products: int = 40,
                           num_positives: int = 27, num_negatives: int = 73) -> EMDataset:
    """Babies 'R' Us vs Buy Buy Baby: same schema, category as aux label."""
    rng = np.random.default_rng(seed * 15485863 + 3)
    categories = ["stroller", "car seat", "crib", "high chair", "monitor",
                  "bottle set", "play mat", "carrier"]
    colors = ["grey", "pink", "blue", "green", "beige"]
    brands = [random_word(rng, 2) for _ in range(8)]

    pool = OfferPool()
    groups: dict[str, str] = {}
    for i in range(num_products):
        category = categories[int(rng.integers(0, len(categories)))]
        brand = brands[int(rng.integers(0, len(brands)))]
        color = colors[int(rng.integers(0, len(colors)))]
        sku = model_code(rng, blocks=(3, 4))
        groups[f"baby-{i}"] = category
        for source in ("babiesrus", "buybuybaby"):
            tokens = [brand, category, color, "deluxe" if rng.random() < 0.3 else "standard"]
            pool.add(f"baby-{i}", EntityRecord.from_dict(
                {"title": " ".join(corrupt_tokens(tokens, rng, drop_prob=0.08)),
                 "SKU": sku if rng.random() > 0.2 else "",
                 "colors": color,
                 "category": category},
                entity_id=category, source=source,
            ))

    pairs = sample_pairs(pool, num_positives, num_negatives, rng, groups)
    train, valid, test = _split_fixed(pairs, rng)
    dataset = EMDataset(
        name="baby_products", train=train, valid=valid, test=test,
        metadata={"family": "magellan", "aux_label": "category"},
    )
    dataset.id_classes = EMDataset.build_id_classes(dataset.all_pairs())
    return dataset


def generate_bikes(seed: int = 0, num_bikes: int = 45,
                   num_positives: int = 32, num_negatives: int = 80) -> EMDataset:
    """Bikedekho vs Bikewale resale listings; brand as the aux label.

    Brand frequencies are skewed (a few brands dominate resale markets),
    reproducing the paper's moderately high LRID (2.314).
    """
    rng = np.random.default_rng(seed * 15485863 + 7)
    brands = ["hero", "bajaj", "yamaha", "royal enfield", "honda", "tvs", "ktm"]
    brand_weights = 1.0 / np.arange(1, len(brands) + 1) ** 1.3
    brand_weights /= brand_weights.sum()
    models = ["splendor", "pulsar", "fz", "classic", "shine", "apache",
              "duke", "passion", "avenger"]
    colors = ["black", "red", "blue", "silver"]

    pool = OfferPool()
    groups: dict[str, str] = {}
    for i in range(num_bikes):
        brand = str(rng.choice(brands, p=brand_weights))
        model = models[int(rng.integers(0, len(models)))]
        color = colors[int(rng.integers(0, len(colors)))]
        year = str(rng.integers(2008, 2020))
        km = f"{int(rng.integers(5, 80)) * 1000}km"
        price = f"rs {int(rng.integers(20, 120)) * 1000}"
        groups[f"bike-{i}"] = brand
        for source in ("bikedekho", "bikewale"):
            tokens = [brand, model, year, color]
            pool.add(f"bike-{i}", EntityRecord.from_dict(
                {"bike_name": " ".join(corrupt_tokens(tokens, rng, drop_prob=0.08)),
                 "color": color,
                 "price": price if rng.random() > 0.25 else "",
                 "km_driven": km},
                entity_id=brand, source=source,
            ))

    pairs = sample_pairs(pool, num_positives, num_negatives, rng, groups)
    train, valid, test = _split_fixed(pairs, rng)
    dataset = EMDataset(
        name="bikes", train=train, valid=valid, test=test,
        metadata={"family": "magellan", "aux_label": "brand"},
    )
    dataset.id_classes = EMDataset.build_id_classes(dataset.all_pairs())
    return dataset


def generate_books(seed: int = 0, num_books: int = 40,
                   num_positives: int = 23, num_negatives: int = 76) -> EMDataset:
    """Goodreads vs Barnes & Noble books; sparse publisher aux label.

    Most publishers appear once or twice, making the auxiliary task
    nearly unlearnable (the paper's books set has 2882 classes for ~400
    pairs) — the ISBN attribute is excluded exactly as in the paper.
    """
    rng = np.random.default_rng(seed * 15485863 + 13)
    subjects = ["history", "garden", "night", "river", "code", "empire",
                "shadow", "light", "island", "winter", "city", "songs"]
    formats = ["paperback", "hardcover", "ebook"]
    publishers = [f"{random_word(rng, 2)} press" for _ in range(30)]

    pool = OfferPool()
    groups: dict[str, str] = {}
    for i in range(num_books):
        words = list(rng.choice(subjects, size=3, replace=False))
        title = f"the {words[0]} of {words[1]} and {words[2]}"
        publisher = publishers[int(rng.integers(0, len(publishers)))]
        pages = str(int(rng.integers(120, 900)))
        fmt = formats[int(rng.integers(0, len(formats)))]
        groups[f"book-{i}"] = publisher
        for source in ("goodreads", "barnesnoble"):
            noisy_title = " ".join(corrupt_tokens(title.split(), rng, drop_prob=0.08))
            pool.add(f"book-{i}", EntityRecord.from_dict(
                {"title": noisy_title,
                 "publisher": publisher if rng.random() > 0.2 else "",
                 "pages": pages,
                 "format": fmt},
                entity_id=publisher, source=source,
            ))

    pairs = sample_pairs(pool, num_positives, num_negatives, rng, groups)
    train, valid, test = _split_fixed(pairs, rng)
    dataset = EMDataset(
        name="books", train=train, valid=valid, test=test,
        metadata={"family": "magellan", "aux_label": "publisher"},
    )
    dataset.id_classes = EMDataset.build_id_classes(dataset.all_pairs())
    return dataset
