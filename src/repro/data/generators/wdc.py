"""Synthetic WDC Product Data Corpus (computers / cameras / watches / shoes).

The real WDC corpus contains product offers extracted from Common Crawl:
several noisy e-shop descriptions per product, with the product ID (GTIN
or MPN cluster) as the auxiliary entity-ID label.  We reproduce that
structure with a per-category product catalogue (brand + model number +
numeric specs) and a shop-noise offer renderer.

The four training sizes keep the paper's ordering (small < medium <
large < xlarge).  The pair-count range is compressed relative to the
paper's (2.8k–68k pairs) so the smallest setting remains trainable at
mini-BERT scale; EXPERIMENTS.md records the mapping.
"""

from __future__ import annotations

import numpy as np

from repro.data.generators.base import (
    CatalogEntity,
    OfferPool,
    corrupt_tokens,
    model_code,
    pair_keys,
    sample_pairs,
)
from repro.data.schema import EMDataset, EntityRecord
from repro.data.splits import train_valid_test_split

# (positives, negatives) per training size — paper ratio ~1:4.5, compressed range.
WDC_SIZES: dict[str, tuple[int, int]] = {
    "small": (16, 72),
    "medium": (36, 160),
    "large": (70, 310),
    "xlarge": (100, 450),
}

# Held-out pair counts shared by all sizes (the paper uses a fixed
# 1100-pair test set per category regardless of training size).
_TEST_POS, _TEST_NEG = (30, 90)
_VALID_POS, _VALID_NEG = (14, 46)

_CATEGORY_SPECS: dict[str, dict] = {
    "computers": {
        "brands": ["samsung", "sandisk", "kingston", "corsair", "intel",
                   "transcend", "crucial", "lexar"],
        "types": ["ssd", "memory card", "usb flash drive", "ram module",
                  "compactflash card"],
        "specs": [
            (["250gb", "500gb", "1tb", "2tb", "4gb", "8gb", "16gb", "32gb"], "capacity"),
            (["520mb/s", "300mb/s", "100mb/s", "1333mhz", "2400mhz"], "speed"),
            (["sata", "m.2", "ddr3", "ddr4", "usb3"], "interface"),
        ],
        "fillers": ["retail", "oem", "bulk", "high performance", "internal",
                    "portable", "series", "pro edition"],
        "num_products": 28,
    },
    "cameras": {
        "brands": ["canon", "nikon", "sony", "fujifilm", "olympus", "panasonic"],
        "types": ["dslr camera", "mirrorless camera", "zoom lens",
                  "camcorder", "action camera"],
        "specs": [
            (["12mp", "16mp", "20mp", "24mp", "45mp"], "resolution"),
            (["18-55mm", "24-70mm", "50mm", "70-200mm"], "lens"),
            (["4k", "1080p", "720p"], "video"),
        ],
        "fillers": ["kit", "body only", "black", "silver", "bundle",
                    "with strap", "wifi"],
        "num_products": 24,
    },
    "watches": {
        "brands": ["casio", "seiko", "citizen", "fossil", "timex", "orient"],
        "types": ["chronograph watch", "diver watch", "field watch",
                  "dress watch", "digital watch"],
        "specs": [
            (["38mm", "40mm", "42mm", "44mm"], "case"),
            (["leather strap", "steel bracelet", "resin band", "nylon strap"], "band"),
            (["quartz", "automatic", "solar"], "movement"),
        ],
        "fillers": ["water resistant", "sapphire", "luminous", "date window",
                    "gift box", "mens", "ladies"],
        "num_products": 25,
    },
    "shoes": {
        "brands": ["nike", "adidas", "puma", "asics", "reebok", "brooks"],
        "types": ["running shoe", "trail shoe", "sneaker", "training shoe",
                  "walking shoe"],
        "specs": [
            (["size 8", "size 9", "size 10", "size 11"], "size"),
            (["black", "white", "blue", "red", "grey"], "color"),
            (["mesh", "leather", "knit"], "upper"),
        ],
        "fillers": ["mens", "womens", "lightweight", "cushioned", "breathable",
                    "new season", "classic"],
        "num_products": 24,
    },
}

WDC_CATEGORIES = tuple(_CATEGORY_SPECS)

_SHOP_PREFIXES = ["buy online |", "best price", "", "", "sale |", "new"]
_SHOP_SUFFIXES = ["| free shipping", "in stock", "", "", "| shop uk", "warehouse deal"]


def _build_catalog(category: str, rng: np.random.Generator) -> list[CatalogEntity]:
    spec = _CATEGORY_SPECS[category]
    catalog: list[CatalogEntity] = []
    for i in range(spec["num_products"]):
        brand = spec["brands"][int(rng.integers(0, len(spec["brands"])))]
        ptype = spec["types"][int(rng.integers(0, len(spec["types"])))]
        code = model_code(rng)
        attrs = {"brand": brand, "type": ptype, "model": code}
        for values, name in spec["specs"]:
            attrs[name] = str(values[int(rng.integers(0, len(values)))])
        catalog.append(
            CatalogEntity(entity_id=f"{category}-{i}", attributes=attrs, group=brand)
        )
    return catalog


def _render_offer(entity: CatalogEntity, category: str,
                  rng: np.random.Generator, shop_index: int) -> EntityRecord:
    spec = _CATEGORY_SPECS[category]
    attrs = entity.attributes
    fillers = spec["fillers"]

    title_tokens = [attrs["brand"], attrs["type"], attrs["model"]]
    spec_tokens = [attrs[name] for _, name in spec["specs"]]
    extra = [fillers[int(rng.integers(0, len(fillers)))] for _ in range(2)]

    title = " ".join(corrupt_tokens(title_tokens + spec_tokens[:1], rng, drop_prob=0.05))
    prefix = _SHOP_PREFIXES[int(rng.integers(0, len(_SHOP_PREFIXES)))]
    suffix = _SHOP_SUFFIXES[int(rng.integers(0, len(_SHOP_SUFFIXES)))]
    description = " ".join(
        corrupt_tokens(spec_tokens + extra, rng, drop_prob=0.2)
    )
    spec_table = " ".join(corrupt_tokens(spec_tokens, rng, drop_prob=0.1))

    return EntityRecord.from_dict(
        {
            "brand": attrs["brand"] if rng.random() > 0.15 else "",
            "title": " ".join(x for x in (prefix, title, suffix) if x),
            "description": description,
            "specTableContent": spec_table,
        },
        entity_id=entity.entity_id,
        source=f"shop-{shop_index}",
    )


def _catalog_entity(category: str, index: int, seed: int) -> CatalogEntity:
    """Catalog entity ``index``, generated independently of all others.

    Unlike :func:`_build_catalog` (which draws entities sequentially
    from one shared rng), each entity here gets its own seeded rng, so
    entity ``i`` of a million-product catalogue is computable in O(1)
    without materializing entities ``0..i-1`` — the property the
    streaming generator needs.
    """
    spec = _CATEGORY_SPECS[category]
    category_offset = sum(ord(c) for c in category)
    rng = np.random.default_rng([seed * 7919 + category_offset, index])
    brand = spec["brands"][int(rng.integers(0, len(spec["brands"])))]
    ptype = spec["types"][int(rng.integers(0, len(spec["types"])))]
    code = model_code(rng)
    attrs = {"brand": brand, "type": ptype, "model": code}
    for values, name in spec["specs"]:
        attrs[name] = str(values[int(rng.integers(0, len(values)))])
    return CatalogEntity(entity_id=f"{category}-{index}", attributes=attrs,
                         group=brand)


def wdc_offer_stream(category: str, num_offers: int, seed: int = 0,
                     offers_per_product: int = 8):
    """Lazily yield ``(key, record)`` offers for a scaled WDC corpus.

    A generator over a synthetic corpus of ``num_offers`` shop offers
    covering ``ceil(num_offers / offers_per_product)`` catalogue
    products — nothing is materialized, so a million-offer corpus
    streams in O(1) memory.  Offers arrive product-interleaved (offer
    ``i`` belongs to product ``i % num_products``), the realistic
    regime for an incremental index: a product's duplicate offers are
    spread across the whole stream rather than adjacent.

    Seeding is stable per offer: offer ``i`` is a pure function of
    ``(category, seed, product index, shop index)``, independent of
    ``num_offers`` — the first 100k offers of a million-offer stream
    are byte-identical to a 100k-offer stream.
    """
    if category not in _CATEGORY_SPECS:
        raise ValueError(f"unknown WDC category {category!r}; "
                         f"expected {WDC_CATEGORIES}")
    if num_offers < 1:
        raise ValueError("num_offers must be >= 1")
    if offers_per_product < 1:
        raise ValueError("offers_per_product must be >= 1")
    num_products = -(-num_offers // offers_per_product)  # ceil division
    category_offset = sum(ord(c) for c in category)
    for i in range(num_offers):
        product = i % num_products
        shop = i // num_products
        entity = _catalog_entity(category, product, seed)
        rng = np.random.default_rng(
            [seed * 7919 + category_offset, product, shop])
        yield (f"{category}-{product}-s{shop}",
               _render_offer(entity, category, rng, shop))


def generate_wdc(category: str, size: str = "medium", seed: int = 0,
                 offers_per_product: int = 8) -> EMDataset:
    """Generate a synthetic WDC dataset for ``category`` at ``size``.

    All test entities also appear (with different offers) in the training
    pool, matching the WDC benchmark construction.
    """
    if category not in _CATEGORY_SPECS:
        raise ValueError(f"unknown WDC category {category!r}; expected {WDC_CATEGORIES}")
    if size not in WDC_SIZES:
        raise ValueError(f"unknown WDC size {size!r}; expected {tuple(WDC_SIZES)}")

    # Stable per-category offset (builtin hash() is salted per process).
    category_offset = sum(ord(c) for c in category)
    rng = np.random.default_rng(seed * 7919 + category_offset)
    catalog = _build_catalog(category, rng)

    pool = OfferPool()
    groups: dict[str, str] = {}
    for entity in catalog:
        groups[entity.entity_id] = entity.group
        for shop in range(offers_per_product):
            pool.add(entity.entity_id, _render_offer(entity, category, rng, shop))

    test = sample_pairs(pool, _TEST_POS, _TEST_NEG, rng, groups)
    valid = sample_pairs(pool, _VALID_POS, _VALID_NEG, rng, groups,
                         forbidden=pair_keys(test))
    num_pos, num_neg = WDC_SIZES[size]
    train = sample_pairs(pool, num_pos, num_neg, rng, groups,
                         forbidden=pair_keys(test) | pair_keys(valid))

    dataset = EMDataset(
        name=f"wdc_{category}_{size}",
        train=train, valid=valid, test=test,
        metadata={"family": "wdc", "category": category, "size": size,
                  "num_products": len(catalog)},
    )
    dataset.id_classes = EMDataset.build_id_classes(dataset.all_pairs())
    return dataset


__all__ = ["WDC_CATEGORIES", "WDC_SIZES", "generate_wdc", "wdc_offer_stream",
           "train_valid_test_split"]
