"""Class-imbalance measurement and manipulation.

Implements the likelihood-ratio imbalance degree (LRID) from Zhu et al.
2018 used in the paper's Table 1, and the positive-pair subsampling that
builds the Table 6 imbalanced variants of WDC computers xlarge.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Iterable, Sequence

import numpy as np

from repro.data.schema import EntityPair


def lrid(class_counts: Iterable[int]) -> float:
    """Likelihood-ratio imbalance degree.

    ``LRID = -2 * sum_c n_c * ln(N / (C * n_c))`` — zero for perfectly
    balanced classes, growing with imbalance.  Matches the paper's Eq. in
    Sec. 4.1.4 up to their normalization: the raw statistic grows with N,
    so (as the paper's Table 1 values imply) we report it per thousand
    observations to keep datasets of different sizes comparable.
    """
    counts = [c for c in class_counts if c > 0]
    if not counts:
        return 0.0
    total = sum(counts)
    num_classes = len(counts)
    stat = -2.0 * sum(
        n * math.log(total / (num_classes * n)) for n in counts
    )
    return stat / 1000.0


def entity_id_lrid(pairs: Sequence[EntityPair]) -> float:
    """LRID of the entity-ID label distribution across both records."""
    counts = Counter(
        r.entity_id for p in pairs for r in (p.record1, p.record2)
        if r.entity_id is not None
    )
    return lrid(counts.values())


def subsample_positives(pairs: Sequence[EntityPair], num_positives: int,
                        rng: np.random.Generator) -> list[EntityPair]:
    """Keep only ``num_positives`` positive pairs (negatives untouched).

    Reproduces the Table 6 protocol: the paper subsamples WDC computers
    xlarge positives from 9690 down to 6146 / 1762 / 722 while leaving the
    negative pairs unchanged, producing pos/neg ratios of roughly
    0.104 / 0.030 / 0.012.
    """
    positives = [p for p in pairs if p.label == 1]
    negatives = [p for p in pairs if p.label == 0]
    if num_positives > len(positives):
        raise ValueError(
            f"requested {num_positives} positives but only {len(positives)} available"
        )
    picked_idx = rng.choice(len(positives), size=num_positives, replace=False)
    picked = [positives[i] for i in sorted(picked_idx)]
    combined = picked + negatives
    order = rng.permutation(len(combined))
    return [combined[i] for i in order]


def positive_negative_ratio(pairs: Sequence[EntityPair]) -> float:
    """Positive / negative pair count ratio (Table 6's row key)."""
    positives = sum(p.label for p in pairs)
    negatives = len(pairs) - positives
    if negatives == 0:
        return math.inf
    return positives / negatives
