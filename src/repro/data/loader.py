"""Pair encoding and batching.

:class:`PairEncoder` turns an :class:`~repro.data.schema.EntityPair` into
the BERT sequence-pair layout the paper uses::

    [CLS] record1 tokens [SEP] record2 tokens [SEP]

with segment ids (0 for the first segment, 1 for the second) and boolean
span masks marking which positions belong to each record's description —
the masks drive EMBA's token-level heads and the AoA module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.data.schema import EMDataset, EntityPair, EntityRecord
from repro.data.serialize import serialize_record
from repro.text.special_tokens import CLS_TOKEN, SEP_TOKEN
from repro.text.wordpiece import WordPieceTokenizer


@dataclass
class EncodedPair:
    """A single encoded pair (unpadded)."""

    input_ids: np.ndarray      # (L,) int64
    segment_ids: np.ndarray    # (L,) int64
    mask1: np.ndarray          # (L,) bool — record1 description tokens
    mask2: np.ndarray          # (L,) bool — record2 description tokens
    tokens: list[str]          # wordpiece strings, for explainability
    label: int
    id1: int                   # entity-ID class index of record1
    id2: int                   # entity-ID class index of record2

    @property
    def length(self) -> int:
        return len(self.input_ids)


@dataclass
class Batch:
    """A padded batch ready for the models."""

    input_ids: np.ndarray       # (B, L) int64
    segment_ids: np.ndarray     # (B, L) int64
    attention_mask: np.ndarray  # (B, L) float — 1 for real tokens
    mask1: np.ndarray           # (B, L) float — record1 span
    mask2: np.ndarray           # (B, L) float — record2 span
    labels: np.ndarray          # (B,) float
    id1: np.ndarray             # (B,) int64
    id2: np.ndarray             # (B,) int64

    @property
    def size(self) -> int:
        return self.input_ids.shape[0]


class PairEncoder:
    """Encode pairs with a WordPiece tokenizer under a length budget.

    The two records share the ``max_length`` budget (minus the three
    special tokens); when the combined length overflows, both segments
    are truncated proportionally, mirroring HuggingFace's
    ``longest_first`` strategy.
    """

    def __init__(self, tokenizer: WordPieceTokenizer, max_length: int = 128,
                 style: str = "plain"):
        if max_length < 8:
            raise ValueError("max_length must be at least 8")
        self.tokenizer = tokenizer
        self.max_length = max_length
        self.style = style
        vocab = tokenizer.vocab
        self._cls = vocab.token_to_id(CLS_TOKEN)
        self._sep = vocab.token_to_id(SEP_TOKEN)

    def _truncate(self, tokens1: list[str], tokens2: list[str]) -> tuple[list[str], list[str]]:
        # Closed form of the one-token-at-a-time longest_first loop
        # (trim the longer list, ties trim tokens1): a list short enough
        # to never be the longer one survives whole and the other gets
        # the remaining budget; otherwise both converge to half, with
        # the tie rule giving tokens2 the odd token.
        budget = self.max_length - 3
        n1, n2 = len(tokens1), len(tokens2)
        if n1 + n2 <= budget:
            return tokens1, tokens2
        half = budget // 2
        if n1 <= half:
            l1, l2 = n1, budget - n1
        elif n2 <= budget - half:
            l1, l2 = budget - n2, n2
        else:
            l1, l2 = half, budget - half
        return tokens1[:l1], tokens2[:l2]

    def record_text(self, record: EntityRecord) -> str:
        """The serialized text of one record under this encoder's style."""
        return serialize_record(record, style=self.style)

    def record_tokens(self, record: EntityRecord) -> list[str]:
        """Untruncated wordpiece tokens of one record's serialized text."""
        return self.tokenizer.tokenize(self.record_text(record))

    def build(self, tokens1: Sequence[str], tokens2: Sequence[str],
              label: int = 0, id1: int = 0, id2: int = 0) -> EncodedPair:
        """Assemble an :class:`EncodedPair` from per-record token lists.

        Applies the shared-budget truncation and packs the
        ``[CLS] r1 [SEP] r2 [SEP]`` layout.  The inputs are not mutated,
        so callers may pass cached token lists.
        """
        tokens1, tokens2 = self._truncate(list(tokens1), list(tokens2))

        tokens = [CLS_TOKEN] + tokens1 + [SEP_TOKEN] + tokens2 + [SEP_TOKEN]
        ids = np.array([self.tokenizer.vocab.token_to_id(t) for t in tokens], dtype=np.int64)
        segments = np.array(
            [0] * (len(tokens1) + 2) + [1] * (len(tokens2) + 1), dtype=np.int64
        )
        mask1 = np.zeros(len(tokens), dtype=bool)
        mask1[1:1 + len(tokens1)] = True
        mask2 = np.zeros(len(tokens), dtype=bool)
        start2 = len(tokens1) + 2
        mask2[start2:start2 + len(tokens2)] = True
        return EncodedPair(
            input_ids=ids, segment_ids=segments, mask1=mask1, mask2=mask2,
            tokens=tokens, label=label, id1=id1, id2=id2,
        )

    def encode(self, pair: EntityPair, dataset: EMDataset | None = None) -> EncodedPair:
        id1 = dataset.id_index(pair.record1.entity_id) if dataset else 0
        id2 = dataset.id_index(pair.record2.entity_id) if dataset else 0
        return self.build(
            self.record_tokens(pair.record1), self.record_tokens(pair.record2),
            label=pair.label, id1=id1, id2=id2,
        )

    def encode_many(self, pairs: Sequence[EntityPair],
                    dataset: EMDataset | None = None) -> list[EncodedPair]:
        return [self.encode(p, dataset) for p in pairs]


def collate(encoded: Sequence[EncodedPair], pad_id: int = 0) -> Batch:
    """Pad a list of encoded pairs into one batch."""
    if not encoded:
        raise ValueError("cannot collate an empty batch")
    max_len = max(e.length for e in encoded)
    batch = len(encoded)
    input_ids = np.full((batch, max_len), pad_id, dtype=np.int64)
    segment_ids = np.zeros((batch, max_len), dtype=np.int64)
    attention = np.zeros((batch, max_len), dtype=np.float32)
    mask1 = np.zeros((batch, max_len), dtype=np.float32)
    mask2 = np.zeros((batch, max_len), dtype=np.float32)
    labels = np.zeros(batch, dtype=np.float32)
    id1 = np.zeros(batch, dtype=np.int64)
    id2 = np.zeros(batch, dtype=np.int64)
    for i, e in enumerate(encoded):
        n = e.length
        input_ids[i, :n] = e.input_ids
        segment_ids[i, :n] = e.segment_ids
        attention[i, :n] = 1.0
        mask1[i, :n] = e.mask1
        mask2[i, :n] = e.mask2
        labels[i] = e.label
        id1[i] = e.id1
        id2[i] = e.id2
    return Batch(input_ids, segment_ids, attention, mask1, mask2, labels, id1, id2)


def iter_batches(encoded: Sequence[EncodedPair], batch_size: int,
                 rng: np.random.Generator | None = None,
                 pad_id: int = 0) -> Iterator[Batch]:
    """Yield shuffled (if ``rng`` given) padded batches."""
    if batch_size < 1:
        raise ValueError("batch_size must be positive")
    order = np.arange(len(encoded))
    if rng is not None:
        order = rng.permutation(len(encoded))
    for start in range(0, len(encoded), batch_size):
        chunk = [encoded[i] for i in order[start:start + batch_size]]
        yield collate(chunk, pad_id=pad_id)


def plan_buckets(lengths: Sequence[int], batch_size: int,
                 max_pad_waste: float = 0.25) -> list[np.ndarray]:
    """Length-bucketed batch plan over ``lengths``.

    Items are sorted by length (stable, so equal lengths keep their input
    order) and cut into buckets of at most ``batch_size`` items.  A bucket
    is also cut early when admitting the next (longer) item would push the
    bucket's padding waste — the fraction of padded cells in the resulting
    ``(B, max_len)`` matrix — above ``max_pad_waste``.

    Returns index arrays into the original sequence; their concatenation
    is a permutation of ``range(len(lengths))``.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be positive")
    if not 0.0 <= max_pad_waste < 1.0:
        raise ValueError("max_pad_waste must be in [0, 1)")
    lengths = np.asarray(lengths, dtype=np.int64)
    order = np.argsort(lengths, kind="stable")
    buckets: list[np.ndarray] = []
    current: list[int] = []
    tokens = 0
    for idx in order:
        n = int(lengths[idx])
        if current:
            # Ascending order: n is the running max, so the projected
            # matrix is (len+1) x n cells holding tokens + n real tokens.
            cells = n * (len(current) + 1)
            waste = 1.0 - (tokens + n) / cells if cells else 0.0
            if len(current) >= batch_size or waste > max_pad_waste:
                buckets.append(np.array(current, dtype=np.int64))
                current, tokens = [], 0
        current.append(int(idx))
        tokens += n
    if current:
        buckets.append(np.array(current, dtype=np.int64))
    return buckets


def iter_bucketed_batches(encoded: Sequence[EncodedPair], batch_size: int,
                          max_pad_waste: float = 0.25, pad_id: int = 0
                          ) -> Iterator[tuple[Batch, np.ndarray]]:
    """Yield length-bucketed padded batches with their original indices.

    Unlike :func:`iter_batches` this sorts by sequence length so each
    batch pads to a near-uniform length, bounding padding waste.  Each
    yielded pair is ``(batch, indices)`` where ``indices[i]`` is the
    position of batch row ``i`` in ``encoded`` — callers scatter outputs
    through it to restore the original order.
    """
    for bucket in plan_buckets([e.length for e in encoded], batch_size,
                               max_pad_waste=max_pad_waste):
        yield collate([encoded[i] for i in bucket], pad_id=pad_id), bucket
