"""Train/valid/test splitting with label stratification."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data.schema import EntityPair


def train_valid_test_split(pairs: Sequence[EntityPair], rng: np.random.Generator,
                           valid_fraction: float = 0.15,
                           test_fraction: float = 0.15,
                           ) -> tuple[list[EntityPair], list[EntityPair], list[EntityPair]]:
    """Stratified split preserving the positive/negative ratio per split.

    The benchmark datasets the paper uses ship pre-split; our generators
    call this to produce the same non-overlapping structure.
    """
    if valid_fraction + test_fraction >= 1.0:
        raise ValueError("valid_fraction + test_fraction must be < 1")
    train: list[EntityPair] = []
    valid: list[EntityPair] = []
    test: list[EntityPair] = []
    for label in (1, 0):
        group = [p for p in pairs if p.label == label]
        order = rng.permutation(len(group))
        n_test = max(int(round(len(group) * test_fraction)), 1 if group else 0)
        n_valid = max(int(round(len(group) * valid_fraction)), 1 if group else 0)
        for rank, idx in enumerate(order):
            if rank < n_test:
                test.append(group[idx])
            elif rank < n_test + n_valid:
                valid.append(group[idx])
            else:
                train.append(group[idx])
    for split in (train, valid, test):
        order = rng.permutation(len(split))
        split[:] = [split[i] for i in order]
    return train, valid, test
