"""repro — a from-scratch reproduction of EMBA (EDBT 2024).

EMBA: Entity Matching using Multi-Task Learning of BERT with
Attention-over-Attention (Zhang, Sun, Ho; EDBT 2024).

Subpackages
-----------
- :mod:`repro.nn` — numpy autodiff + neural-network framework
- :mod:`repro.text` — WordPiece tokenizer, vocabularies, subword hashing
- :mod:`repro.bert` — transformer encoder + MLM pre-training
- :mod:`repro.fasttext` — subword-hash embeddings (EMBA (FT))
- :mod:`repro.data` — synthetic EM benchmarks + loading machinery
- :mod:`repro.models` — EMBA, JointBERT, baselines, ablations, trainer
- :mod:`repro.eval` — metrics, significance tests, throughput
- :mod:`repro.explain` — LIME and attention visualization
- :mod:`repro.experiments` — tables 1-7 and figures 5-6 harness
- :mod:`repro.verify` — gradcheck, runtime invariants, golden digests

Setting ``REPRO_VERIFY=1`` in the environment installs the runtime
invariant guards (see :mod:`repro.verify.invariants`) for every
subsequent forward/backward pass in the process.

Setting ``REPRO_TRACE=1`` enables the telemetry subsystem (see
:mod:`repro.obs`): hierarchical spans and metrics over the engine,
trainer, checkpointer, blocking, and experiments runner.  Any other
non-empty value is treated as a path and additionally streams the
trace there as JSON lines (read it back with ``repro trace <path>``).
"""

import os as _os

__version__ = "1.0.0"

__all__ = ["__version__"]

if _os.environ.get("REPRO_VERIFY", "").strip() not in ("", "0"):
    from repro.verify.invariants import install as _install_invariants

    _install_invariants()

_trace = _os.environ.get("REPRO_TRACE", "").strip()
if _trace not in ("", "0"):
    from repro import obs as _obs

    _obs.enable(trace_path=None if _trace == "1" else _trace)
del _trace
