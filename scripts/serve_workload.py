"""Traced serve smoke workload for the ``check.sh`` SLO gate.

Boots a sharded :class:`~repro.serve.daemon.MatchServer` over a tiny
random-weight dual-encoder (same fixture recipe as ``tests/test_serve``),
drives a pipelined, trace-tagged request burst through it, and seals the
session as a ``kind="serve"`` run in the registry.  ``check.sh`` then
gates the recorded run with::

    repro slo check slo-smoke --spec tests/baselines/serve_slo.json

The workload is deliberately small (a few hundred pairs through two
forked shard workers) but exercises the full observability path: per-
process trace files, cross-process merge, live SLO evaluation inside the
daemon, and post-hoc auditing of the sealed manifest + breach events.

Exit codes: 0 on success, 1 when the merged trace is missing expected
processes or stages (the smoke invariant, independent of the SLO gate).
"""

import argparse
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro import obs
from repro.bert.config import BertConfig
from repro.bert.model import BertModel
from repro.data.loader import PairEncoder
from repro.engine import EngineConfig, InferenceEngine
from repro.models import EmbaDual
from repro.runs import RunStore, recording
from repro.serve import (
    MatchScorer,
    MatchServer,
    ServeClient,
    ServeConfig,
    ServerHandle,
    SloSpec,
)
from repro.text import WordPieceTokenizer, train_wordpiece

VOCAB_WORDS = ("sandisk ultra compactflash card 4gb retail transcend 300x "
               "samsung evo ssd 1tb lexar pro sd 32gb usb stick flash").split()

CFG = BertConfig(vocab_size=400, hidden_size=16, num_layers=1, num_heads=2,
                 intermediate_size=32, max_position=96, dropout=0.0,
                 attention_dropout=0.0)


def _scorer_factory():
    corpus = [" ".join(VOCAB_WORDS[i:i + 6])
              for i in range(0, len(VOCAB_WORDS), 3)] * 2
    tokenizer = WordPieceTokenizer(train_wordpiece(corpus, vocab_size=400))
    encoder = PairEncoder(tokenizer, max_length=CFG.max_position)
    cfg = CFG.with_vocab(len(tokenizer.vocab))
    bert = BertModel(cfg, np.random.default_rng(0))
    model = EmbaDual(bert, cfg.hidden_size, 4, np.random.default_rng(1))
    model.eval()
    engine_factory = lambda m: InferenceEngine(  # noqa: E731
        m, encoder, EngineConfig(batch_size=8))
    return MatchScorer(engine_factory, model)


def _requests(rng, count):
    records = []
    for _ in range(8):
        n = int(rng.integers(2, 8))
        records.append({"title": " ".join(rng.choice(VOCAB_WORDS, size=n))})
    return [(records[int(rng.integers(8))], records[int(rng.integers(8))])
            for _ in range(count)]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=60)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--name", default="slo-smoke")
    parser.add_argument("--spec", default="tests/baselines/serve_slo.json")
    parser.add_argument("--trace-dir", default="")
    parser.add_argument("--root", default=None,
                        help="run-registry root (default: REPRO_RUNS_DIR)")
    args = parser.parse_args(argv)

    spec = SloSpec.load(args.spec)
    trace_dir = args.trace_dir or tempfile.mkdtemp(prefix="repro-slo-smoke-")
    trace_path = str(Path(trace_dir) / "trace.jsonl")

    # Enable tracing BEFORE the server forks its shard workers so every
    # child inherits the trace config and writes its own pid-suffixed file.
    obs.enable(trace_path)
    server = MatchServer(
        _scorer_factory,
        ServeConfig(shards=args.shards, slo=spec, window_s=spec.window_s))

    store = RunStore(args.root) if args.root else RunStore()
    writer = store.create(name=args.name, kind="serve",
                          config={"shards": args.shards,
                                  "requests": args.requests,
                                  "slo": spec.to_dict()},
                          argv=list(argv) if argv else sys.argv[1:])
    rng = np.random.default_rng(7)
    with recording(writer):
        with ServerHandle(server) as (host, port):
            with ServeClient(host, port) as client:
                responses = client.match_many(
                    _requests(rng, args.requests), trace="smoke")
                errors = sum(1 for r in responses if "error" in r)
        server.check_slo()
        writer.finish(**server.final_metrics())
    obs.disable()

    merged = obs.merge_traces(trace_dir)
    pids = {record.pid for record in merged.records}
    names = {record.name for record in merged.records}
    print(f"serve workload: {args.requests} requests "
          f"({errors} errors) through {args.shards} shards; "
          f"run {writer.manifest['id']} ({args.name}) sealed")
    print(f"trace: {len(merged.records)} spans from {len(pids)} processes, "
          f"{len(merged.trace_ids())} trace ids in {trace_dir}")

    want = args.shards + 1  # parent + one file per forked worker
    if len(pids) < want:
        print(f"FAIL: expected spans from >= {want} processes, "
              f"saw {sorted(pids)}", file=sys.stderr)
        return 1
    stages = {"serve.request", "serve.queue_wait", "serve.score_wait",
              "serve.write", "serve.batch"}
    missing = stages - names
    if missing:
        print(f"FAIL: merged trace missing stages: {sorted(missing)}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
