"""Pre-compute the extension-bench runs not covered by the main grid."""

from repro.experiments.config import PROFILES, spec_for
from repro.experiments.runner import run_experiment

profile = PROFILES["quick"]
for model in ("emba_unmasked_aoa", "bert_described", "emba_described"):
    spec = spec_for("wdc_computers", "medium", model, 0, profile)
    metrics = run_experiment(spec)
    print(model, round(metrics["em_f1"], 3), flush=True)
print("EXT DONE")
