#!/usr/bin/env bash
# Repo check: tier-1 tests, the numerical verify stage (slow-marked
# sweeps + `repro selfcheck`), the crash-recovery suite under runtime
# invariants, the inference-engine benchmark smoke, and the telemetry
# (obs) suite + overhead bench.
#
#   bash scripts/check.sh
#
# The bench compares naive vs. bucketed+memoized scoring on a
# blocking-shaped workload and appends its report to
# results/ext_engine.txt.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== verify: slow-marked sweeps =="
python -m pytest -q -m slow

echo "== verify: selfcheck (gradcheck + invariants + golden + parity) =="
python -m repro.cli selfcheck

echo "== faults: crash-recovery matrix under runtime invariants =="
REPRO_VERIFY=1 python -m pytest -q tests/test_crash_recovery.py

echo "== engine benchmark smoke =="
python -m pytest -q benchmarks/bench_engine.py

echo "== obs: telemetry suite + overhead bench =="
python -m pytest -q tests/test_obs.py
python -m pytest -q benchmarks/bench_ext_obs.py

echo "== results =="
cat results/ext_engine.txt
cat results/ext_obs.txt
