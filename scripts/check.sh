#!/usr/bin/env bash
# Repo check: tier-1 tests, the numerical verify stage (slow-marked
# sweeps + `repro selfcheck`), the crash-recovery suite under runtime
# invariants, the inference-engine benchmark smoke, the telemetry (obs)
# suite + overhead bench, the run-registry stage (registry suite,
# recording/probe overhead bench, and a seeded smoke run gated against
# the committed baseline by the `repro runs check` watchdog), the
# cascade stage (staged-scoring suite + frontier bench, gated against
# tests/baselines/cascade_bench.json for F1 and throughput regressions),
# the serve stage (serving test battery + load bench of the
# `repro serve` daemon, gated against tests/baselines/serve_bench.json
# for served-throughput regressions), and the stream stage (durable
# streaming suite incl. the kill-at-any-point crash matrix + a
# 100k-offer ingest/recovery bench, gated against
# tests/baselines/stream_bench.json for ingest-throughput regressions),
# and the explain stage (explain test battery + attention-faithfulness
# bench, gated against tests/baselines/explain_bench.json so
# interpretability regressions — faithfulness gap, LIME/AoA agreement —
# trip the watchdog like F1 regressions), and the slo stage (a short
# traced 2-shard serve workload recorded into the registry and gated by
# `repro slo check` against the committed tests/baselines/serve_slo.json
# objectives).
#
#   bash scripts/check.sh
#
# The bench compares naive vs. bucketed+memoized scoring on a
# blocking-shaped workload and appends its report to
# results/ext_engine.txt.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== verify: slow-marked sweeps =="
python -m pytest -q -m slow

echo "== verify: selfcheck (gradcheck + invariants + golden + parity) =="
python -m repro.cli selfcheck

echo "== faults: crash-recovery matrix under runtime invariants =="
REPRO_VERIFY=1 python -m pytest -q tests/test_crash_recovery.py

echo "== engine benchmark smoke =="
python -m pytest -q benchmarks/bench_engine.py

echo "== obs: telemetry suite + overhead bench =="
python -m pytest -q tests/test_obs.py
python -m pytest -q benchmarks/bench_ext_obs.py

echo "== runs: registry suite + recording/probe overhead bench =="
python -m pytest -q tests/test_runs.py
python -m pytest -q benchmarks/bench_ext_runs.py

RUNS_TMP="$(mktemp -d)"
trap 'rm -rf "$RUNS_TMP"' EXIT

echo "== cascade: staged-scoring suite + frontier bench vs baseline =="
python -m pytest -q tests/test_cascade.py
REPRO_RUNS_DIR="$RUNS_TMP" python -m pytest -q benchmarks/bench_cascade.py --record
REPRO_RUNS_DIR="$RUNS_TMP" python -m repro.cli runs check bench-cascade \
    --baseline tests/baselines/cascade_bench.json \
    --f1-tol 0.02 --throughput-tol 0.5

echo "== serve: daemon test battery + load bench vs baseline =="
python -m pytest -q tests/test_serve.py
REPRO_RUNS_DIR="$RUNS_TMP" python -m pytest -q benchmarks/bench_serve.py --record
REPRO_RUNS_DIR="$RUNS_TMP" python -m repro.cli runs check bench-serve \
    --baseline tests/baselines/serve_bench.json \
    --f1-tol 0 --throughput-tol 0.5

echo "== slo: traced serve workload gated by repro slo check =="
REPRO_RUNS_DIR="$RUNS_TMP" python scripts/serve_workload.py \
    --requests 60 --shards 2 --name slo-smoke \
    --spec tests/baselines/serve_slo.json
REPRO_RUNS_DIR="$RUNS_TMP" python -m repro.cli slo check slo-smoke \
    --spec tests/baselines/serve_slo.json

echo "== stream: durable-resolution suite + 100k ingest/recovery bench =="
python -m pytest -q tests/test_stream.py
REPRO_RUNS_DIR="$RUNS_TMP" python -m pytest -q benchmarks/bench_stream.py --record
REPRO_RUNS_DIR="$RUNS_TMP" python -m repro.cli runs check bench-stream \
    --baseline tests/baselines/stream_bench.json \
    --f1-tol 0 --throughput-tol 0.5

echo "== explain: faithfulness suite + bench vs baseline =="
python -m pytest -q tests/test_explain.py
REPRO_RUNS_DIR="$RUNS_TMP" python -m pytest -q benchmarks/bench_explain.py --record
REPRO_RUNS_DIR="$RUNS_TMP" python -m repro.cli runs check bench-explain \
    --baseline tests/baselines/explain_bench.json \
    --f1-tol 0.05 --faithfulness-tol 0.05 --agreement-tol 0.3

echo "== runs: seeded smoke run vs committed baseline (watchdog) =="
REPRO_RUNS_DIR="$RUNS_TMP" python -m repro.cli run \
    --dataset wdc_computers --size small --model emba_ft \
    --profile smoke --epochs 10 --seed 1 --no-cache --name watchdog-smoke
REPRO_RUNS_DIR="$RUNS_TMP" python -m repro.cli runs check watchdog-smoke \
    --baseline tests/baselines/runs_smoke.json --f1-tol 0.05

echo "== results =="
cat results/ext_engine.txt
cat results/ext_obs.txt
cat results/ext_runs.txt
cat results/cascade_frontier.txt
cat results/explain_faithfulness.txt
cat results/serve_bench.txt
cat results/serve_trace.txt
cat results/stream_bench.txt
