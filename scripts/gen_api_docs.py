"""Generate docs/api.md from the package docstrings.

Walks every public module, lists public classes/functions with their
signatures and first docstring line.  Run from the repository root:

    python scripts/gen_api_docs.py
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil
from pathlib import Path

import repro


def first_line(doc: str | None) -> str:
    if not doc:
        return ""
    return doc.strip().splitlines()[0]


def describe_module(name: str) -> list[str]:
    module = importlib.import_module(name)
    lines = [f"### `{name}`", ""]
    if module.__doc__:
        lines += [first_line(module.__doc__), ""]
    members = []
    for attr_name, attr in sorted(vars(module).items()):
        if attr_name.startswith("_"):
            continue
        if getattr(attr, "__module__", None) != name:
            continue
        if inspect.isclass(attr) or inspect.isfunction(attr):
            try:
                signature = str(inspect.signature(attr))
            except (TypeError, ValueError):
                signature = "(...)"
            kind = "class" if inspect.isclass(attr) else "def"
            members.append(
                f"- **{kind} `{attr_name}{signature}`** — {first_line(attr.__doc__)}"
            )
    if members:
        lines += members + [""]
    return lines


def main() -> None:
    lines = [
        "# API reference",
        "",
        "Auto-generated from docstrings by `scripts/gen_api_docs.py`.",
        "",
    ]
    for info in sorted(pkgutil.walk_packages(repro.__path__, "repro."),
                       key=lambda m: m.name):
        if info.name.endswith("__main__"):
            continue
        lines += describe_module(info.name)
    out = Path("docs/api.md")
    out.parent.mkdir(exist_ok=True)
    out.write_text("\n".join(lines), encoding="utf-8")
    print(f"wrote {out} ({len(lines)} lines)")


if __name__ == "__main__":
    main()
