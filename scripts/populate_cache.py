"""Pre-populate the run cache for the quick-profile benchmarks.

Run-cache entries are keyed by spec digest, so the benchmarks afterwards
render every table from cache in seconds.  Safe to re-run: completed
runs are skipped.
"""

import time

from repro.experiments.config import PROFILES, TABLE6_MODELS, spec_for
from repro.experiments.runner import run_experiment
from repro.experiments.tables import TABLE6_POSITIVES, _ablation_specs, _main_grid_specs

profile = PROFILES["quick"]
specs = _main_grid_specs(profile) + _ablation_specs(profile)
specs += [
    spec_for("wdc_computers", "xlarge", model, 0, profile,
             subsample_positives=num_pos)
    for num_pos in TABLE6_POSITIVES
    for model in TABLE6_MODELS
]

seen = set()
unique = []
for s in specs:
    if s.digest() not in seen:
        seen.add(s.digest())
        unique.append(s)

start = time.time()
for i, spec in enumerate(unique):
    t0 = time.time()
    metrics = run_experiment(spec)
    print(f"[{i+1}/{len(unique)}] {spec.model:14s} {spec.dataset}/{spec.size}"
          f" seed={spec.seed} sub={spec.subsample_positives}"
          f" f1={metrics['em_f1']:.3f} ({time.time()-t0:.1f}s, total {time.time()-start:.0f}s)",
          flush=True)
print("DONE", time.time() - start, "seconds")
