"""Class-imbalance robustness (the paper's Table 6 experiment).

Subsamples the positive pairs of WDC computers (xlarge) while keeping
all negatives, then measures how much EM F1 degrades for EMBA vs
JointBERT.  The paper finds EMBA (and EMBA-SB) degrade least.

Run:  python examples/imbalance_study.py
"""

import numpy as np

from repro.bert import PRESETS, pretrained_bert
from repro.data import PairEncoder, load_dataset, subsample_positives
from repro.data.imbalance import positive_negative_ratio
from repro.data.schema import EMDataset
from repro.eval import format_table
from repro.models import Emba, JointBert, TrainConfig, Trainer
from repro.text import WordPieceTokenizer, train_wordpiece
from repro.text.corpus import build_corpus


def evaluate(model_cls, dataset, tokenizer, config, corpus) -> float:
    pair_encoder = PairEncoder(tokenizer, max_length=config.max_position)
    encoder = pretrained_bert(config, tokenizer, corpus, seed=0)
    model = model_cls(encoder, config.hidden_size, dataset.num_id_classes,
                      np.random.default_rng(0))
    trainer = Trainer(TrainConfig(epochs=25, patience=8, learning_rate=1e-3))
    trainer.fit(model,
                pair_encoder.encode_many(dataset.train, dataset),
                pair_encoder.encode_many(dataset.valid, dataset))
    return trainer.evaluate_f1(
        model, pair_encoder.encode_many(dataset.test, dataset))


def main() -> None:
    base = load_dataset("wdc_computers", size="xlarge")
    corpus = build_corpus([base])
    tokenizer = WordPieceTokenizer(train_wordpiece(corpus, vocab_size=2000))
    config = PRESETS["mini-base"].with_vocab(len(tokenizer.vocab))

    baselines = {
        "EMBA": evaluate(Emba, base, tokenizer, config, corpus),
        "JointBERT": evaluate(JointBert, base, tokenizer, config, corpus),
    }

    rows = []
    for num_pos in (63, 18):
        rng = np.random.default_rng(7)
        variant = EMDataset(
            name=base.name,
            train=subsample_positives(base.train, num_pos, rng),
            valid=base.valid, test=base.test,
            id_classes=base.id_classes, metadata=dict(base.metadata),
        )
        ratio = positive_negative_ratio(variant.train)
        row = [f"{ratio:.3f}"]
        for name, cls in (("EMBA", Emba), ("JointBERT", JointBert)):
            f1 = evaluate(cls, variant, tokenizer, config, corpus)
            row.append(f"{100 * f1:.2f} ({100 * (f1 - baselines[name]):+.2f})")
        rows.append(row)

    print(format_table(
        ["pos/neg ratio", "EMBA (Δ)", "JointBERT (Δ)"], rows,
        title="WDC computers xlarge under positive subsampling "
              f"(full-data F1: EMBA {100 * baselines['EMBA']:.2f}, "
              f"JointBERT {100 * baselines['JointBERT']:.2f})"))


if __name__ == "__main__":
    main()
