"""Low-label learning: self-training vs active learning.

The paper's future work (Sec. 5) calls for semi-supervised approaches
that "use a small portion of the training labels".  This example takes
WDC computers (xlarge), keeps only 20% of the training labels, and
compares three ways of spending the rest:

- supervised on the 20% only (baseline);
- self-training: pseudo-label the unlabeled 80% where confident;
- active learning: query true labels for the most uncertain pairs
  (simulated oracle), 16 per round.

Run:  python examples/low_label_learning.py
"""

import numpy as np

from repro.bert import PRESETS, pretrained_bert
from repro.data import PairEncoder, load_dataset
from repro.eval import format_table
from repro.models import Emba, TrainConfig, Trainer, active_learn, self_train
from repro.text import WordPieceTokenizer, train_wordpiece
from repro.text.corpus import build_corpus


def main() -> None:
    dataset = load_dataset("wdc_computers", size="xlarge")
    corpus = build_corpus([dataset])
    tokenizer = WordPieceTokenizer(train_wordpiece(corpus, vocab_size=2000))
    config = PRESETS["mini-base"].with_vocab(len(tokenizer.vocab))
    pair_encoder = PairEncoder(tokenizer, max_length=config.max_position)

    encoded = pair_encoder.encode_many(dataset.train, dataset)
    valid = pair_encoder.encode_many(dataset.valid, dataset)
    test = pair_encoder.encode_many(dataset.test, dataset)

    rng = np.random.default_rng(0)
    order = rng.permutation(len(encoded))
    cut = len(encoded) // 5
    labeled = [encoded[i] for i in order[:cut]]
    unlabeled = [encoded[i] for i in order[cut:]]
    print(f"labels available: {len(labeled)} of {len(encoded)} training pairs")

    def factory():
        encoder = pretrained_bert(config, tokenizer, corpus, seed=0)
        return Emba(encoder, config.hidden_size, dataset.num_id_classes,
                    np.random.default_rng(1))

    train_config = TrainConfig(epochs=20, patience=10, learning_rate=1e-3,
                               seed=0)
    trainer = Trainer(train_config)

    # Baseline: the labeled 20% only.
    baseline = factory()
    trainer.fit(baseline, labeled, valid)
    rows = [["supervised (20% labels)",
             round(100 * trainer.evaluate_f1(baseline, test), 2), len(labeled)]]

    # Self-training over the unlabeled pool.
    st = self_train(factory, labeled, unlabeled, valid, train_config,
                    rounds=2, confidence=0.9)
    rows.append(["self-training",
                 round(100 * trainer.evaluate_f1(st.model, test), 2),
                 len(labeled) + sum(st.pseudo_labels_per_round)])

    # Active learning with a 16-pair budget per round.
    al = active_learn(factory, labeled, unlabeled, valid, train_config,
                      rounds=3, budget_per_round=16)
    rows.append(["active learning (2x16 queries)",
                 round(100 * trainer.evaluate_f1(al.model, test), 2),
                 al.labeled_per_round[-1]])

    print(format_table(
        ["strategy", "test F1", "train pool size"],
        rows, title="\nWDC computers xlarge with 20% labels"))


if __name__ == "__main__":
    main()
