"""Quickstart: train EMBA on a synthetic product-matching benchmark.

Runs the full pipeline in a couple of minutes on one CPU core:

1. generate the WDC-computers (medium) synthetic benchmark;
2. train a WordPiece tokenizer and MLM-pre-train a mini BERT encoder;
3. fine-tune EMBA with the dual objective (EM + two entity-ID tasks);
4. evaluate F1 on the held-out test pairs and match two new records.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.bert import PRESETS, pretrained_bert
from repro.data import PairEncoder, load_dataset
from repro.data.loader import collate
from repro.models import Emba, TrainConfig, Trainer
from repro.text import WordPieceTokenizer, train_wordpiece
from repro.text.corpus import build_corpus


def main() -> None:
    # 1. Data: a synthetic analogue of the WDC computers benchmark.
    dataset = load_dataset("wdc_computers", size="medium")
    print(f"dataset: {dataset.name}  train={len(dataset.train)} "
          f"valid={len(dataset.valid)} test={len(dataset.test)} "
          f"id-classes={dataset.num_id_classes}")

    # 2. Tokenizer + pre-trained encoder (cached on disk after first run).
    corpus = build_corpus([dataset])
    tokenizer = WordPieceTokenizer(train_wordpiece(corpus, vocab_size=2000))
    config = PRESETS["mini-base"].with_vocab(len(tokenizer.vocab))
    print(f"encoder: {config.name}  vocab={config.vocab_size} "
          f"hidden={config.hidden_size} layers={config.num_layers}")
    encoder = pretrained_bert(config, tokenizer, corpus, seed=0)

    # 3. Fine-tune EMBA (Algorithm 1: Eq. 3 dual objective, Adam,
    #    warmup + linear decay, early stopping on validation F1).
    pair_encoder = PairEncoder(tokenizer, max_length=config.max_position)
    train = pair_encoder.encode_many(dataset.train, dataset)
    valid = pair_encoder.encode_many(dataset.valid, dataset)
    test = pair_encoder.encode_many(dataset.test, dataset)

    model = Emba(encoder, config.hidden_size, dataset.num_id_classes,
                 np.random.default_rng(0))
    trainer = Trainer(TrainConfig(epochs=30, patience=10, learning_rate=1e-3))
    result = trainer.fit(model, train, valid)
    print(f"trained {result.epochs_run} epochs; "
          f"best validation F1 = {result.best_valid_f1:.3f}")

    # 4. Evaluate and use the model.
    test_f1 = trainer.evaluate_f1(model, test)
    print(f"test F1 = {test_f1:.3f}")

    # Score one real match and one real non-match from the held-out set.
    positive = next(p for p in dataset.test if p.label == 1)
    negative = next(p for p in dataset.test if p.label == 0)
    for name, pair in (("match", positive), ("non-match", negative)):
        batch = collate([pair_encoder.encode(pair)])
        prob = float(model.predict(batch)["em_prob"][0])
        print(f"\n{name} pair -> P(match) = {prob:.3f}")
        print(f"  r1: {pair.record1.text()[:70]}")
        print(f"  r2: {pair.record2.text()[:70]}")


if __name__ == "__main__":
    main()
