"""Explainability: why did the model call it a match?

Reproduces the paper's Section 4.7 case study on the SanDisk-vs-
Transcend CompactFlash pair: the two offers share most tokens (4gb, 50p,
cf, compactflash, card, retail) but the brands differ, so the ground
truth is NON-match.  The example trains EMBA, then shows

- a LIME (Mojito-style) word-importance explanation (Figure 5), and
- last-layer attention plus EMBA's AoA token-importance heatmaps
  (Figure 6).

Run:  python examples/explain_match.py
"""

import numpy as np

from repro.bert import PRESETS, pretrained_bert
from repro.data import PairEncoder, load_dataset
from repro.data.loader import collate
from repro.experiments.casestudy import case_study_pair
from repro.explain.attention_viz import aoa_scores, attention_scores, render_heatmap
from repro.explain.lime import LimeExplainer, render_importances
from repro.models import Emba, TrainConfig, Trainer
from repro.text import WordPieceTokenizer, train_wordpiece
from repro.text.corpus import build_corpus


def main() -> None:
    dataset = load_dataset("wdc_computers", size="medium")
    corpus = build_corpus([dataset])
    tokenizer = WordPieceTokenizer(train_wordpiece(corpus, vocab_size=2000))
    config = PRESETS["mini-base"].with_vocab(len(tokenizer.vocab))
    encoder = pretrained_bert(config, tokenizer, corpus, seed=0)
    pair_encoder = PairEncoder(tokenizer, max_length=config.max_position)

    model = Emba(encoder, config.hidden_size, dataset.num_id_classes,
                 np.random.default_rng(0))
    trainer = Trainer(TrainConfig(epochs=30, patience=10, learning_rate=1e-3))
    trainer.fit(model,
                pair_encoder.encode_many(dataset.train, dataset),
                pair_encoder.encode_many(dataset.valid, dataset))

    pair = case_study_pair()
    print("entity 1:", pair.record1.text())
    print("entity 2:", pair.record2.text())
    prob = float(model.predict(collate([pair_encoder.encode(pair)]))["em_prob"][0])
    print(f"\nEMBA P(match) = {prob:.3f}  (ground truth: non-match)")

    print("\n--- LIME word importances (negative pushes toward non-match) ---")
    explainer = LimeExplainer(model, pair_encoder, num_samples=150, seed=0)
    print(render_importances(explainer.explain(pair), top_k=10))

    print("\n--- last-layer attention received per word ---")
    s1, s2 = attention_scores(model, pair_encoder, pair)
    print("entity 1:", render_heatmap(s1))
    print("entity 2:", render_heatmap(s2))

    print("\n--- EMBA AoA gamma (record1 token importance) ---")
    print(render_heatmap(aoa_scores(model, pair_encoder, pair)))


if __name__ == "__main__":
    main()
