"""Bibliographic deduplication and the auxiliary-task pitfall.

dblp-scholar is the paper's most imbalanced benchmark (LRID 4.5): the
entity-ID auxiliary task (venue+year) has a few dominant classes and a
long tail.  The paper's conclusion notes that redefining the auxiliary
task (venue only, instead of venue+year) improved performance.  This
example quantifies that: it trains EMBA with both auxiliary label
definitions and with no auxiliary task at all (single-task BERT), and
reports the LRID of each label space next to the resulting EM F1.

Run:  python examples/bibliographic_dedup.py
"""

from collections import Counter

import numpy as np

from repro.bert import PRESETS, pretrained_bert
from repro.data import PairEncoder, load_dataset
from repro.data.imbalance import lrid
from repro.data.schema import EMDataset, EntityPair, EntityRecord
from repro.eval import format_table
from repro.models import Emba, SingleTaskMatcher, TrainConfig, Trainer
from repro.text import WordPieceTokenizer, train_wordpiece
from repro.text.corpus import build_corpus


def relabel_venue_only(dataset: EMDataset) -> EMDataset:
    """Redefine the auxiliary label from venue+year to venue only."""

    def strip_year(record: EntityRecord) -> EntityRecord:
        venue = record.entity_id.rsplit("-", 1)[0] if record.entity_id else None
        return EntityRecord(record.attributes, entity_id=venue,
                            source=record.source)

    def convert(pairs):
        return [EntityPair(strip_year(p.record1), strip_year(p.record2), p.label)
                for p in pairs]

    out = EMDataset(name=f"{dataset.name}_venue_only",
                    train=convert(dataset.train), valid=convert(dataset.valid),
                    test=convert(dataset.test), metadata=dict(dataset.metadata))
    out.id_classes = EMDataset.build_id_classes(out.all_pairs())
    return out


def label_lrid(dataset: EMDataset) -> float:
    counts = Counter(r.entity_id for p in dataset.all_pairs()
                     for r in (p.record1, p.record2) if r.entity_id)
    return lrid(counts.values())


def run(dataset: EMDataset, tokenizer, config, corpus, single_task=False) -> float:
    pair_encoder = PairEncoder(tokenizer, max_length=config.max_position)
    train = pair_encoder.encode_many(dataset.train, dataset)
    valid = pair_encoder.encode_many(dataset.valid, dataset)
    test = pair_encoder.encode_many(dataset.test, dataset)
    encoder = pretrained_bert(config, tokenizer, corpus, seed=0)
    rng = np.random.default_rng(0)
    if single_task:
        model = SingleTaskMatcher(encoder, config.hidden_size, rng)
    else:
        model = Emba(encoder, config.hidden_size, dataset.num_id_classes, rng)
    trainer = Trainer(TrainConfig(epochs=30, patience=10, learning_rate=1e-3))
    trainer.fit(model, train, valid)
    return trainer.evaluate_f1(model, test)


def main() -> None:
    base = load_dataset("dblp_scholar")
    venue_only = relabel_venue_only(base)

    corpus = build_corpus([base])
    tokenizer = WordPieceTokenizer(train_wordpiece(corpus, vocab_size=2000))
    config = PRESETS["mini-base"].with_vocab(len(tokenizer.vocab))

    rows = [
        ["EMBA, aux = venue+year", base.num_id_classes,
         round(label_lrid(base), 3), round(100 * run(base, tokenizer, config, corpus), 2)],
        ["EMBA, aux = venue only", venue_only.num_id_classes,
         round(label_lrid(venue_only), 3),
         round(100 * run(venue_only, tokenizer, config, corpus), 2)],
        ["BERT (no aux task)", 0, 0.0,
         round(100 * run(base, tokenizer, config, corpus, single_task=True), 2)],
    ]
    print(format_table(
        ["configuration", "aux classes", "aux LRID", "EM F1"],
        rows, title="dblp-scholar: auxiliary-task design vs EM performance"))


if __name__ == "__main__":
    main()
