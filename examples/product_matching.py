"""Product matching: EMBA vs JointBERT on a WDC-style catalogue.

The scenario from the paper's introduction: e-shops publish noisy offers
for the same products, and hard non-matches share most of their tokens
(same brand, same specs).  This example trains both dual-objective
models and compares:

- main-task F1 (Table 2's comparison),
- auxiliary entity-ID accuracy (Table 3's comparison), and
- where they disagree on individual test pairs (Figure 1b's comparison).

Run:  python examples/product_matching.py
"""

import numpy as np

from repro.bert import PRESETS, pretrained_bert
from repro.data import PairEncoder, load_dataset
from repro.eval import accuracy, format_table, precision_recall_f1
from repro.models import Emba, JointBert, TrainConfig, Trainer
from repro.text import WordPieceTokenizer, train_wordpiece
from repro.text.corpus import build_corpus


def train_model(model_cls, encoder, config, dataset, splits, seed=0):
    model = model_cls(encoder, config.hidden_size, dataset.num_id_classes,
                      np.random.default_rng(seed))
    trainer = Trainer(TrainConfig(epochs=30, patience=10, learning_rate=1e-3,
                                  seed=seed))
    trainer.fit(model, splits["train"], splits["valid"])
    return model, trainer


def main() -> None:
    dataset = load_dataset("wdc_computers", size="xlarge")
    corpus = build_corpus([dataset])
    tokenizer = WordPieceTokenizer(train_wordpiece(corpus, vocab_size=2000))
    config = PRESETS["mini-base"].with_vocab(len(tokenizer.vocab))
    pair_encoder = PairEncoder(tokenizer, max_length=config.max_position)
    splits = {
        name: pair_encoder.encode_many(getattr(dataset, name), dataset)
        for name in ("train", "valid", "test")
    }

    rows = []
    predictions = {}
    for name, cls in (("JointBERT", JointBert), ("EMBA", Emba)):
        encoder = pretrained_bert(config, tokenizer, corpus, seed=0)
        model, trainer = train_model(cls, encoder, config, dataset, splits)
        preds = trainer.predict_all(model, splits["test"])
        predictions[name] = preds
        precision, recall, f1 = precision_recall_f1(preds["labels"], preds["em_pred"])
        rows.append([
            name, round(100 * f1, 2), round(100 * precision, 2),
            round(100 * recall, 2),
            round(100 * accuracy(preds["id1"], preds["id1_pred"]), 2),
            round(100 * accuracy(preds["id2"], preds["id2_pred"]), 2),
        ])

    print(format_table(
        ["model", "EM F1", "precision", "recall", "ID acc1", "ID acc2"],
        rows, title="WDC computers (xlarge): dual-objective models"))

    # Pairs where the two models disagree (the paper's Figure 1b scenario).
    jb, em = predictions["JointBERT"], predictions["EMBA"]
    disagree = np.nonzero(jb["em_pred"] != em["em_pred"])[0]
    print(f"\nmodels disagree on {len(disagree)}/{len(jb['labels'])} test pairs")
    for idx in disagree[:3]:
        pair = dataset.test[idx]
        truth = "match" if pair.label else "non-match"
        print(f"- truth={truth}  jointbert={'match' if jb['em_pred'][idx] else 'non-match'}"
              f"  emba={'match' if em['em_pred'][idx] else 'non-match'}")
        print(f"    r1: {pair.record1.text()[:70]}")
        print(f"    r2: {pair.record2.text()[:70]}")


if __name__ == "__main__":
    main()
