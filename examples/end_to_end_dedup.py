"""End-to-end deduplication: blocking + neural matching.

The paper's models consume pre-paired candidates; a production EM
system also needs candidate *generation*.  This example builds the full
pipeline over two raw offer collections:

1. compare three blockers (token overlap, MinHash/LSH, sorted
   neighborhood) on pair completeness vs reduction ratio;
2. train EMBA on labeled pairs;
3. run block -> match over the raw collections and report the
   discovered duplicates.

Run:  python examples/end_to_end_dedup.py
"""

import numpy as np

from repro.bert import PRESETS, pretrained_bert
from repro.blocking import (
    MatchingPipeline,
    MinHashBlocker,
    SortedNeighborhoodBlocker,
    TokenBlocker,
    evaluate_blocking,
)
from repro.data import PairEncoder, load_dataset
from repro.eval import format_table
from repro.models import Emba, TrainConfig, Trainer
from repro.text import WordPieceTokenizer, train_wordpiece
from repro.text.corpus import build_corpus


def collections_from(dataset):
    """Two deduplicated record collections + gold cross-collection matches."""
    left, right = [], []
    left_index, right_index = {}, {}
    for pair in dataset.test:
        for record, coll, index in ((pair.record1, left, left_index),
                                    (pair.record2, right, right_index)):
            key = (record.source, record.attributes)
            if key not in index:
                index[key] = len(coll)
                coll.append(record)
    gold = []
    for i, a in enumerate(left):
        for j, b in enumerate(right):
            if a.entity_id == b.entity_id:
                gold.append((i, j))
    return left, right, gold


def main() -> None:
    dataset = load_dataset("wdc_computers", size="xlarge")
    left, right, gold = collections_from(dataset)
    print(f"collections: {len(left)} x {len(right)} records, "
          f"{len(gold)} true matches, cross product {len(left) * len(right)}")

    blockers = {
        "token overlap": TokenBlocker(min_common=1),
        "minhash lsh": MinHashBlocker(num_hashes=48, bands=24),
        "sorted neighborhood": SortedNeighborhoodBlocker(window=6),
    }
    rows = []
    for name, blocker in blockers.items():
        metrics = evaluate_blocking(blocker.block(left, right), gold)
        rows.append([name, metrics["candidates"],
                     round(metrics["pair_completeness"], 3),
                     round(metrics["reduction_ratio"], 3)])
    print(format_table(
        ["blocker", "candidates", "pair completeness", "reduction ratio"],
        rows, title="\nblocking quality"))

    # Train the matcher on the labeled training pairs.
    corpus = build_corpus([dataset])
    tokenizer = WordPieceTokenizer(train_wordpiece(corpus, vocab_size=2000))
    config = PRESETS["mini-base"].with_vocab(len(tokenizer.vocab))
    encoder = pretrained_bert(config, tokenizer, corpus, seed=0)
    pair_encoder = PairEncoder(tokenizer, max_length=config.max_position)
    model = Emba(encoder, config.hidden_size, dataset.num_id_classes,
                 np.random.default_rng(0))
    trainer = Trainer(TrainConfig(epochs=25, patience=10, learning_rate=1e-3))
    trainer.fit(model,
                pair_encoder.encode_many(dataset.train, dataset),
                pair_encoder.encode_many(dataset.valid, dataset))

    # Calibrate the decision threshold on validation data (the default
    # 0.5 over-predicts under heavy class imbalance).
    from repro.eval import calibrate_model

    threshold = calibrate_model(
        model, pair_encoder.encode_many(dataset.valid, dataset))
    print(f"\ncalibrated decision threshold: {threshold:.3f}")

    # Block -> match over the raw collections.
    pipeline = MatchingPipeline(TokenBlocker(min_common=1), model,
                                pair_encoder, threshold=min(threshold, 0.99))
    matches = pipeline.matches(left, right)
    gold_set = set(gold)
    correct = sum((d.left, d.right) in gold_set for d in matches)
    precision = correct / len(matches) if matches else 0.0
    recall = correct / len(gold) if gold else 0.0
    print(f"\npipeline found {len(matches)} matches: "
          f"precision={precision:.3f} recall={recall:.3f}")
    for d in matches[:3]:
        print(f"  p={d.probability:.3f}  {left[d.left].text()[:45]!r}  <->  "
              f"{right[d.right].text()[:45]!r}")


if __name__ == "__main__":
    main()
